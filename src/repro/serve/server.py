"""Batched, sharded multi-engine serving runtime.

``ModelServer`` drives a stack of PD FC layers the way the paper's
deployment story scales past one engine: each layer's
:class:`~repro.core.BlockPermutedDiagonalMatrix` is cut **row-wise** into
``num_shards`` shards (block-row granularity, so every shard is itself a
valid PD matrix) and each shard executes on its own
:class:`~repro.hw.PermDNNEngine` instance.  Because row shards partition
the output dimension, the shard engines process the *same* zero-skipped
input columns and their stacked outputs reproduce the unsharded
:meth:`~repro.hw.PermDNNEngine.run_fc_batch` result bit for bit.  Shard
concurrency exists on two clocks: in **simulated time** a micro-batch
occupies a layer for its slowest shard's cycles (the engines are modelled
as a parallel array), and in **host time** the shard engines of a layer
actually run on a :class:`~concurrent.futures.ThreadPoolExecutor`
(``num_threads``; each shard's kernel work releases the GIL inside its
batched numpy/scipy product).  Results are stitched in shard order, so
threaded and sequential execution are bit-identical by construction.

Sharding reuses the layer matrix's cached index plan through
:meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shard` (pure slicing of
the ``_IndexPlan`` arrays -- index arithmetic is computed once per layer,
never per shard) and shard ``data`` aliases the layer's storage, so a
server wraps live training weights with zero copies.

Requests flow through a :class:`~repro.serve.batching.MicroBatcher`
(configurable batch size and flush deadline) and micro-batches pipeline
between layers: layer ``l`` starts batch ``b`` as soon as layer ``l-1``
finished it *and* layer ``l`` finished batch ``b-1``.  Timing is simulated
engine time (cycles at the configured clock), the same accounting every
other ``repro.hw`` result uses.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.config import EngineConfig
from repro.hw.engine import PermDNNEngine
from repro.serve.batching import MicroBatcher, Request

__all__ = [
    "EmptyServeReportError",
    "LayerShardStats",
    "ModelServer",
    "ServeReport",
    "ShardedLayer",
]


class EmptyServeReportError(ValueError):
    """Raised when percentile statistics are asked of an empty report."""


@dataclass
class LayerShardStats:
    """Cumulative counters for one ``(layer, shard)`` engine.

    Attributes:
        cycles: busy cycles across all processed micro-batches.
        macs: multiply-accumulates performed.
        batches: micro-batches processed.
        samples: individual requests processed.
        shed: requests this shard never saw because admission control
            rejected them at the queue (accounted on the entry layer's
            shards, which is where the work would have started).
    """

    cycles: int = 0
    macs: int = 0
    batches: int = 0
    samples: int = 0
    shed: int = 0


class ShardedLayer:
    """One FC layer split row-wise across shard engines.

    Built either from a full layer matrix (:meth:`__init__` calls
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shards`) or from
    pre-sharded matrices loaded out of a bundle (:meth:`from_shards`).

    Args:
        matrix: the full ``(out, in)`` PD weight matrix.
        activation: optional ActU mode (``"relu"``/``"tanh"``) applied by
            every shard engine to its output slice (elementwise, so the
            sharded result still matches the unsharded one exactly).
        num_shards: how many engines the layer spreads over.
    """

    def __init__(
        self,
        matrix: BlockPermutedDiagonalMatrix,
        activation: str | None,
        num_shards: int,
    ) -> None:
        self._init_from(matrix.row_shards(num_shards), activation)

    @classmethod
    def from_shards(
        cls,
        shards: list[BlockPermutedDiagonalMatrix],
        activation: str | None,
    ) -> "ShardedLayer":
        """Wrap already-sharded matrices (e.g. from a sharded bundle)."""
        if not shards:
            raise ValueError("a sharded layer needs at least one shard")
        widths = {shard.shape[1] for shard in shards}
        if len(widths) != 1:
            raise ValueError(
                f"shard input widths disagree: {sorted(widths)}"
            )
        layer = cls.__new__(cls)
        layer._init_from(list(shards), activation)
        return layer

    def _init_from(
        self, shards: list[BlockPermutedDiagonalMatrix], activation: str | None
    ) -> None:
        self.shards = shards
        self.activation = activation
        self.num_shards = len(shards)
        self.in_features = shards[0].shape[1]
        self.out_features = sum(shard.shape[0] for shard in shards)

    def check_capacity(self, engines: list[PermDNNEngine]) -> None:
        """Verify every shard fits its engine's SRAM budget."""
        for engine, shard in zip(engines, self.shards):
            engine.check_capacity(shard)

    def run_batch(
        self,
        engines: list[PermDNNEngine],
        x_batch: np.ndarray,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        executor: ThreadPoolExecutor | None = None,
    ) -> tuple[np.ndarray, list[int], list[int]]:
        """Execute one micro-batch on every shard engine.

        Each shard runs through
        :meth:`~repro.hw.PermDNNEngine.run_fc_batch_detailed` -- the same
        accounting as the unsharded baseline (pipeline fill paid once per
        batch, per-sample compute + writeback) -- so the concatenated
        outputs are bit-identical to the unsharded batch call by
        construction.

        With an ``executor``, the shards run as one task each on its
        threads (safe: every shard owns its engine and writes a disjoint
        column slice of ``outputs``); without one they run sequentially
        on the calling thread.  Either way results are collected in shard
        order, so the stitched output is deterministic and identical
        across thread counts.

        Returns:
            ``(outputs, shard_cycles, shard_macs)`` with outputs of shape
            ``(B, out_features)``; the batch's wall time on the shard
            array is ``max(shard_cycles)`` -- in simulated time the
            engines are a parallel array, whatever the host execution
            mode.
        """
        # np.zeros, not np.empty: the shard writes that cover every column
        # happen inside ``run_shard`` (possibly on executor threads), out
        # of reach of RPR006's unconditional-fill analysis.
        outputs = np.zeros(
            (x_batch.shape[0], self.out_features),
            dtype=self.shards[0].compute_dtype,
        )

        def run_shard(
            engine: PermDNNEngine,
            shard: BlockPermutedDiagonalMatrix,
            offset: int,
        ) -> tuple[int, int]:
            out, cycles, macs = engine.run_fc_batch_detailed(
                shard,
                x_batch,
                activation=self.activation,
                zero_skip=zero_skip,
                enforce_capacity=enforce_capacity,
            )
            outputs[:, offset : offset + shard.shape[0]] = out
            return cycles, macs

        tasks = []
        offset = 0
        for engine, shard in zip(engines, self.shards):
            tasks.append((engine, shard, offset))
            offset += shard.shape[0]
        if executor is not None and self.num_shards > 1:
            futures = [executor.submit(run_shard, *task) for task in tasks]
            results = [future.result() for future in futures]
        else:
            results = [run_shard(*task) for task in tasks]
        shard_cycles = [cycles for cycles, _ in results]
        shard_macs = [macs for _, macs in results]
        return outputs, shard_cycles, shard_macs

    def __repr__(self) -> str:
        return (
            f"ShardedLayer({self.in_features} -> {self.out_features}, "
            f"shards={self.num_shards}, activation={self.activation!r})"
        )


@dataclass
class ServeReport:
    """Everything one :meth:`ModelServer.drain` produced.

    Per-request latency is recorded as a queue/compute split:
    ``queue_us`` covers arrival to the instant the request's micro-batch
    starts computing on the entry layer (batch-formation wait plus
    waiting for a free entry-layer engine), ``compute_us`` covers the
    pipeline traversal, and ``latencies_us`` is their sum (completion
    minus arrival) -- the quantity the SLO is stated against.

    Attributes:
        outputs: final-layer output per admitted request, in submission
            (rid) order.
        latencies_us: per-request total latency (completion minus arrival).
        batch_sizes: micro-batch sizes, in formation order.
        makespan_us: first admitted arrival to last completion.
        throughput_rps: requests served per second of simulated time.
        layer_stats: ``(L, N)`` grid of per-(layer, shard) counters for
            this drain.
        layer_cycles: per-layer critical-path cycles (the slowest shard of
            every micro-batch, summed).
        queue_us: per-request queueing latency (see above).
        compute_us: per-request pipeline-compute latency (see above).
        shed_rids: ids of requests rejected by admission control, in
            arrival order; always empty on an unbounded queue.
    """

    outputs: list[np.ndarray]
    latencies_us: np.ndarray
    batch_sizes: list[int]
    makespan_us: float
    throughput_rps: float
    layer_stats: list[list[LayerShardStats]]
    layer_cycles: list[int]
    queue_us: np.ndarray = field(default_factory=lambda: np.empty(0))
    compute_us: np.ndarray = field(default_factory=lambda: np.empty(0))
    shed_rids: list[int] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        """Admitted (= completed) requests."""
        return len(self.outputs)

    @property
    def num_shed(self) -> int:
        """Requests rejected by admission control."""
        return len(self.shed_rids)

    @property
    def num_submitted(self) -> int:
        """Everything that arrived: admitted plus shed."""
        return self.num_requests + self.num_shed

    def _series(self, which: str) -> np.ndarray:
        series = {
            "total": self.latencies_us,
            "queue": self.queue_us,
            "compute": self.compute_us,
        }
        if which not in series:
            raise ValueError(
                f"unknown latency series {which!r}; "
                f"known: {', '.join(sorted(series))}"
            )
        return series[which]

    def latency_percentile(self, q: float, which: str = "total") -> float:
        """Latency percentile in microseconds (e.g. ``q=50``, ``q=99``).

        Raises:
            EmptyServeReportError: on a report with no completed
                requests -- percentiles of nothing are a caller bug, not
                a zero.
        """
        series = self._series(which)
        if series.size == 0:
            raise EmptyServeReportError(
                "latency percentiles are undefined on an empty report "
                f"({self.num_shed} shed, 0 completed)"
            )
        return float(np.percentile(series, q))

    def percentile_curve(
        self,
        qs: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
        which: str = "total",
    ) -> np.ndarray:
        """Latency percentiles at every ``q`` of ``qs``, as an array.

        ``which`` selects the series: ``"total"`` (default),
        ``"queue"``, or ``"compute"``.  Monotone in ``q`` by definition
        of the percentile; raises :class:`EmptyServeReportError` on an
        empty report like :meth:`latency_percentile`.
        """
        series = self._series(which)
        if series.size == 0:
            raise EmptyServeReportError(
                "latency percentiles are undefined on an empty report "
                f"({self.num_shed} shed, 0 completed)"
            )
        return np.percentile(series, np.asarray(qs, dtype=np.float64))


class ModelServer:
    """Sharded multi-engine serving front end (submit / drain).

    Args:
        layers: ``(matrix, activation)`` pairs, input to output (the same
            shape :meth:`~repro.hw.PermDNNEngine.run_network` accepts), or
            pre-built :class:`ShardedLayer` objects.
        num_shards: engines per layer; each holds one row shard.
        config: engine configuration shared by every shard engine.
        max_batch_size: micro-batcher fill limit.
        flush_deadline_us: micro-batcher deadline flush.
        zero_skip: forward the engines' input zero-skipping.
        enforce_capacity: validate every shard against its engine's SRAM
            budget at construction (and per call).
        num_threads: host threads driving each layer's shard engines.
            ``None`` (default) uses ``min(max shard count, host CPUs)``;
            ``1`` forces sequential shard execution.  Purely a host-side
            execution knob: simulated cycles, counters, and outputs are
            identical at every thread count (shards are collected in
            shard order).
        queue_capacity: bound on the in-flight population (requests
            admitted but not yet completed, including the forming
            batch).  ``None`` (default) queues unboundedly -- the exact
            pre-admission-control behaviour.  With a bound, a request
            arriving while the population is at capacity is **shed**
            (reject-newest): it is never executed, its id lands in
            :attr:`ServeReport.shed_rids`, and the entry layer's shard
            counters record the rejection.  Bounding the queue bounds
            queueing delay (Little's law: delay ~ capacity / service
            rate), which is what keeps admitted-request tail latency
            inside an SLO past the saturation knee.
    """

    def __init__(
        self,
        layers: list,
        num_shards: int = 4,
        config: EngineConfig | None = None,
        max_batch_size: int = 16,
        flush_deadline_us: float = 50.0,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        num_threads: int | None = None,
        queue_capacity: int | None = None,
    ) -> None:
        if not layers:
            raise ValueError("ModelServer needs at least one layer")
        if queue_capacity is not None and queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive or None, got {queue_capacity}"
            )
        self.queue_capacity = queue_capacity
        self.config = config or EngineConfig()
        self.zero_skip = zero_skip
        self.enforce_capacity = enforce_capacity
        self.layers: list[ShardedLayer] = [
            layer
            if isinstance(layer, ShardedLayer)
            else ShardedLayer(layer[0], layer[1], num_shards)
            for layer in layers
        ]
        # Derive from the layers: a pre-built ShardedLayer carries its own
        # shard count, which the ``num_shards`` argument does not override.
        self.num_shards = self.layers[0].num_shards
        if num_threads is None:
            num_threads = min(
                max(layer.num_shards for layer in self.layers),
                os.cpu_count() or 1,
            )
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = int(num_threads)
        for prev, nxt in zip(self.layers, self.layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer chain mismatch: {prev!r} feeds {nxt!r}"
                )
        # One engine per (layer, shard): every shard owns its own SRAMs and
        # counters, exactly like an array of physical engines would.
        self.engines: list[list[PermDNNEngine]] = [
            [PermDNNEngine(self.config) for _ in range(layer.num_shards)]
            for layer in self.layers
        ]
        if enforce_capacity:
            for layer, engines in zip(self.layers, self.engines):
                layer.check_capacity(engines)
        self.batcher = MicroBatcher(max_batch_size, flush_deadline_us)
        self._pending: list[Request] = []
        self._next_rid = 0
        self._last_arrival_us = 0.0

    @classmethod
    def from_model(cls, model, **kwargs) -> "ModelServer":
        """Wrap a trained FC model (its live weights, zero copies).

        The model is flattened through
        :func:`repro.nn.serialization.model_engine_layers`; shard data
        aliases the layers' parameter storage, so serving reflects
        subsequent in-place weight updates.
        """
        from repro.nn.serialization import model_engine_layers

        return cls(model_engine_layers(model), **kwargs)

    @classmethod
    def from_bundle(
        cls,
        directory,
        missing_backend: str = "error",
        **kwargs,
    ) -> "ModelServer":
        """Boot a server from a sharded image bundle.

        Every shard matrix arrives with its serialized index plan
        (:mod:`repro.serve.bundle`), so cold-starting a many-layer sharded
        server performs **no** index arithmetic.  Keyword arguments are
        forwarded to the constructor (batching, config, ...).
        """
        from repro.serve.bundle import load_sharded_bundle

        layers, _ = load_sharded_bundle(
            directory, missing_backend=missing_backend
        )
        sharded = [
            ShardedLayer.from_shards(shards, activation)
            for shards, activation in layers
        ]
        return cls(sharded, **kwargs)

    # ------------------------------------------------------------------

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    @property
    def cycles_per_us(self) -> float:
        return self.config.clock_ghz * 1e3

    def submit(self, x: np.ndarray, arrival_us: float | None = None) -> int:
        """Queue one request; returns its id (= output position).

        ``arrival_us`` defaults to the previous request's arrival (an
        all-at-once burst when never specified); arrivals are clamped to be
        non-decreasing so the queue stays ordered.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.in_features,):
            raise ValueError(
                f"expected input of shape ({self.in_features},), got {x.shape}"
            )
        if arrival_us is None:
            arrival_us = self._last_arrival_us
        arrival_us = max(float(arrival_us), self._last_arrival_us)
        self._last_arrival_us = arrival_us
        rid = self._next_rid
        self._next_rid += 1
        self._pending.append(Request(rid, x, arrival_us))
        return rid

    def submit_many(
        self,
        xs: np.ndarray,
        arrivals_us: np.ndarray | None = None,
    ) -> list[int]:
        """Queue a batch of requests; returns their ids in order."""
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2:
            raise ValueError(f"expected inputs of shape (B, n), got {xs.shape}")
        if arrivals_us is None:
            return [self.submit(x) for x in xs]
        arrivals = np.asarray(arrivals_us, dtype=np.float64)
        if arrivals.shape != (xs.shape[0],):
            raise ValueError(
                f"arrivals_us shape {arrivals.shape} does not match "
                f"batch of {xs.shape[0]}"
            )
        return [self.submit(x, t) for x, t in zip(xs, arrivals)]

    def drain(self) -> ServeReport:
        """Serve every pending request and return the drain report.

        Micro-batches are formed online (the batcher's streaming
        assembler) and pipelined through the layer shard arrays: batch
        ``b`` enters layer ``l`` at ``max(completion[l-1][b],
        completion[l][b-1], ready_b)`` and occupies the layer for its
        slowest shard's cycles.  A batch is never ready before its last
        member arrived, so per-request latency (completion minus
        arrival) is honest open-loop timing; each request's wait is
        split into queue and compute components (see
        :class:`ServeReport`).

        With a bounded ``queue_capacity``, admission control runs at
        each request's arrival instant: if the in-flight population
        (admitted, not yet completed at that simulated time) is at
        capacity, the newest request is shed instead of queued.  Batch
        formation, execution, and shedding all advance on the same
        simulated clock, so the whole drain stays a pure function of the
        submitted ``(input, arrival)`` sequence -- identical seeds
        reproduce identical per-request latency traces.  Outputs come
        back in submission order regardless of batching.

        With ``num_threads > 1`` a drain-scoped thread pool runs each
        layer's shard engines concurrently on the host (shut down before
        this method returns, so no threads outlive the drain); the
        simulated clock and every output are unchanged by threading.
        """
        pending, self._pending = self._pending, []
        num_layers = len(self.layers)
        layer_stats = [
            [LayerShardStats() for _ in range(layer.num_shards)]
            for layer in self.layers
        ]
        layer_cycles = [0] * num_layers
        outputs: dict[int, np.ndarray] = {}
        latencies: dict[int, float] = {}
        queue_lat: dict[int, float] = {}
        batch_sizes: list[int] = []
        shed_rids: list[int] = []
        # completion time (in cycles) of the previous batch, per layer
        layer_free = [0.0] * num_layers
        # completion times (us) of already-executed batches' requests, in
        # non-decreasing order (each batch finishes no earlier than its
        # predecessor); ``done_idx`` advances with simulated time so the
        # in-flight count below stays O(1) amortized.
        completion_log: list[float] = []
        done_idx = 0

        # Drain-scoped shard pool: created here (not per batch, not per
        # server) so threads are reused across every micro-batch of the
        # drain yet never outlive it.
        executor = (
            ThreadPoolExecutor(
                max_workers=self.num_threads,
                thread_name_prefix="repro-shard",
            )
            if self.num_threads > 1
            else None
        )

        def run_batch(batch) -> None:
            current = batch.stacked_inputs()
            done = batch.ready_us * self.cycles_per_us
            start_entry = done
            for idx, (layer, engines) in enumerate(
                zip(self.layers, self.engines)
            ):
                current, shard_cycles, shard_macs = layer.run_batch(
                    engines,
                    current,
                    zero_skip=self.zero_skip,
                    enforce_capacity=self.enforce_capacity,
                    executor=executor,
                )
                stage = max(shard_cycles)
                start = max(done, layer_free[idx])
                if idx == 0:
                    start_entry = start
                done = start + stage
                layer_free[idx] = done
                layer_cycles[idx] += stage
                for shard_idx, (cycles, macs) in enumerate(
                    zip(shard_cycles, shard_macs)
                ):
                    stats = layer_stats[idx][shard_idx]
                    stats.cycles += cycles
                    stats.macs += macs
                    stats.batches += 1
                    stats.samples += batch.size
            completion_us = done / self.cycles_per_us
            start_entry_us = start_entry / self.cycles_per_us
            for row, request in enumerate(batch.requests):
                outputs[request.rid] = current[row]
                latencies[request.rid] = completion_us - request.arrival_us
                queue_lat[request.rid] = start_entry_us - request.arrival_us
                completion_log.append(completion_us)
            batch_sizes.append(batch.size)

        try:
            assembler = self.batcher.assembler()
            for request in pending:
                flushed = assembler.poll(request.arrival_us)
                if flushed is not None:
                    run_batch(flushed)
                if self.queue_capacity is not None:
                    # In-flight population at this arrival: the forming
                    # batch plus every executed request still completing
                    # in the simulated future.
                    while (
                        done_idx < len(completion_log)
                        and completion_log[done_idx] <= request.arrival_us
                    ):
                        done_idx += 1
                    in_flight = (
                        assembler.pending_count
                        + len(completion_log)
                        - done_idx
                    )
                    if in_flight >= self.queue_capacity:
                        shed_rids.append(request.rid)
                        for stats in layer_stats[0]:
                            stats.shed += 1
                        continue
                for batch in assembler.offer(request):
                    run_batch(batch)
            tail = assembler.finish()
            if tail is not None:
                run_batch(tail)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

        rids = sorted(outputs)
        latencies_us = np.asarray([latencies[rid] for rid in rids])
        queue_us = np.asarray([queue_lat[rid] for rid in rids])
        compute_us = latencies_us - queue_us
        shed = set(shed_rids)
        admitted = [req for req in pending if req.rid not in shed]
        if admitted:
            first_arrival = min(request.arrival_us for request in admitted)
            last_completion = max(
                request.arrival_us + latencies[request.rid]
                for request in admitted
            )
            makespan_us = last_completion - first_arrival
        else:
            makespan_us = 0.0
        throughput = (
            len(rids) / (makespan_us * 1e-6) if makespan_us > 0 else 0.0
        )
        return ServeReport(
            outputs=[outputs[rid] for rid in rids],
            latencies_us=latencies_us,
            batch_sizes=batch_sizes,
            makespan_us=makespan_us,
            throughput_rps=throughput,
            layer_stats=layer_stats,
            layer_cycles=layer_cycles,
            queue_us=queue_us,
            compute_us=compute_us,
            shed_rids=shed_rids,
        )

    def __repr__(self) -> str:
        return (
            f"ModelServer(layers={len(self.layers)}, "
            f"shards={self.num_shards}, "
            f"threads={self.num_threads}, "
            f"max_batch={self.batcher.max_batch_size}, "
            f"deadline={self.batcher.flush_deadline_us}us, "
            f"queue_capacity={self.queue_capacity})"
        )
