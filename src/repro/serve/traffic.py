"""Seeded open-loop arrival-process generators for the serving runtime.

Closed-loop benchmarks (submit everything at ``t=0``, measure the drain)
answer "how fast can the engines go"; production serving is judged on
tail latency under **open-loop** arrivals, where requests keep coming
whether or not the server kept up.  This module generates the arrival
side of that experiment: each process turns an offered load (mean
requests/second) and a seed into a non-decreasing array of arrival
timestamps in simulated microseconds, ready for
:meth:`~repro.serve.ModelServer.submit_many`.

Every generator is a pure function of ``(parameters, seed)`` -- the same
seed reproduces the exact same stream bit for bit, which is what makes
open-loop benchmark runs and their per-request latency traces replayable
(the statistical suite in ``tests/serve/test_traffic.py`` pins this
down).

Processes:

- :class:`DeterministicArrivals` -- evenly spaced at the offered rate
  (the zero-variance reference).
- :class:`PoissonArrivals` -- i.i.d. exponential inter-arrivals, the
  classic open-loop traffic model.
- :class:`BurstyArrivals` -- Markov-modulated on/off Poisson: dwell in
  an ON state (fast Poisson) and an OFF state (slow or silent),
  exponential dwell times, configured duty cycle; mean rate stays at the
  offered load.
- :class:`DiurnalArrivals` -- sinusoidal rate curve sampled by
  Lewis-Shedler thinning (a day/night load swing compressed into the
  simulated window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "BurstyTrace",
    "DeterministicArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "UnknownArrivalProcessError",
    "arrival_process_names",
    "make_arrival_process",
]

US_PER_S = 1e6


class UnknownArrivalProcessError(LookupError):
    """Raised by :func:`make_arrival_process` for an unregistered name."""


class ArrivalProcess:
    """Base class: an offered load plus a seed, yielding arrival times.

    Args:
        rate_rps: mean offered load in requests per second.  Every
            subclass keeps its *mean* rate at this value, whatever shape
            the process has, so "offered load" means the same thing
            across processes in a sweep.
        seed: PRNG seed; :meth:`generate` is a pure function of the
            constructor arguments, so equal seeds give bit-identical
            streams.
    """

    name = "arrival-process"

    def __init__(self, rate_rps: float, seed: int = 0) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self.seed = int(seed)

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def generate(self, num_requests: int) -> np.ndarray:
        """``(num_requests,)`` non-decreasing arrival times in microseconds."""
        raise NotImplementedError

    def _check_count(self, num_requests: int) -> None:
        if num_requests <= 0:
            raise ValueError(
                f"num_requests must be positive, got {num_requests}"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(rate_rps={self.rate_rps:g}, "
            f"seed={self.seed})"
        )


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals: request ``i`` lands at ``i / rate``."""

    name = "deterministic"

    def generate(self, num_requests: int) -> np.ndarray:
        self._check_count(num_requests)
        return np.arange(num_requests, dtype=np.float64) * (
            US_PER_S / self.rate_rps
        )


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process: i.i.d. exponential inter-arrivals."""

    name = "poisson"

    def generate(self, num_requests: int) -> np.ndarray:
        self._check_count(num_requests)
        gaps = self._rng().exponential(
            US_PER_S / self.rate_rps, size=num_requests
        )
        return np.cumsum(gaps)


@dataclass(frozen=True)
class BurstyTrace:
    """One bursty stream plus its ON/OFF time accounting.

    ``measured_duty_cycle`` is the fraction of simulated time spent in
    the ON state over the generated span -- the statistical suite checks
    it converges to the configured duty cycle.
    """

    arrivals_us: np.ndarray
    on_us: float
    off_us: float

    @property
    def measured_duty_cycle(self) -> float:
        span = self.on_us + self.off_us
        return self.on_us / span if span > 0 else 1.0


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated on/off Poisson arrivals at a fixed mean rate.

    The process alternates between an ON state (Poisson at
    ``on_rate_rps``) and an OFF state (Poisson at ``off_rate_fraction *
    on_rate_rps``, silent by default); dwell times are exponential.  The
    ON rate is derived from the offered load so the long-run mean rate
    equals ``rate_rps`` exactly:

    ``rate_rps = duty_cycle * on_rate + (1 - duty_cycle) * off_rate``.

    Args:
        rate_rps: long-run mean offered load.
        duty_cycle: fraction of time in the ON state, in ``(0, 1]``.
        burst_len: expected number of arrivals per ON dwell (sets the
            dwell time scale relative to the rate).
        off_rate_fraction: OFF-state rate as a fraction of the ON rate,
            in ``[0, 1]`` (0 = silent gaps between bursts).
    """

    name = "bursty"

    def __init__(
        self,
        rate_rps: float,
        seed: int = 0,
        duty_cycle: float = 0.25,
        burst_len: float = 8.0,
        off_rate_fraction: float = 0.0,
    ) -> None:
        super().__init__(rate_rps, seed)
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError(
                f"duty_cycle must be in (0, 1], got {duty_cycle}"
            )
        if burst_len <= 0:
            raise ValueError(f"burst_len must be positive, got {burst_len}")
        if not 0.0 <= off_rate_fraction <= 1.0:
            raise ValueError(
                "off_rate_fraction must be in [0, 1], got "
                f"{off_rate_fraction}"
            )
        self.duty_cycle = float(duty_cycle)
        self.burst_len = float(burst_len)
        self.off_rate_fraction = float(off_rate_fraction)
        self.on_rate_rps = self.rate_rps / (
            self.duty_cycle + (1.0 - self.duty_cycle) * self.off_rate_fraction
        )
        self.off_rate_rps = self.off_rate_fraction * self.on_rate_rps
        self.mean_on_us = self.burst_len * US_PER_S / self.on_rate_rps
        self.mean_off_us = (
            self.mean_on_us * (1.0 - self.duty_cycle) / self.duty_cycle
        )

    def simulate(self, num_requests: int) -> BurstyTrace:
        """Generate a stream and keep the ON/OFF dwell accounting."""
        self._check_count(num_requests)
        rng = self._rng()
        arrivals: list[float] = []
        on_us = 0.0
        off_us = 0.0
        t = 0.0
        seg_start = 0.0
        state_on = True
        state_end = rng.exponential(self.mean_on_us)
        while len(arrivals) < num_requests:
            rate = self.on_rate_rps if state_on else self.off_rate_rps
            gap = rng.exponential(US_PER_S / rate) if rate > 0 else math.inf
            if t + gap <= state_end:
                # Arrival inside the current dwell; exponential gaps are
                # memoryless, so redrawing after a state switch is exact.
                t += gap
                arrivals.append(t)
            else:
                if state_on:
                    on_us += state_end - seg_start
                else:
                    off_us += state_end - seg_start
                t = state_end
                seg_start = t
                state_on = not state_on
                dwell = rng.exponential(
                    self.mean_on_us if state_on else self.mean_off_us
                )
                state_end = t + dwell
        # Close the final partial dwell at the last arrival.
        if state_on:
            on_us += t - seg_start
        else:
            off_us += t - seg_start
        return BurstyTrace(np.asarray(arrivals), on_us=on_us, off_us=off_us)

    def generate(self, num_requests: int) -> np.ndarray:
        return self.simulate(num_requests).arrivals_us


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate curve via Lewis-Shedler thinning.

    The instantaneous rate is ``rate_rps * (1 + amplitude *
    sin(2*pi*t/period_us))`` -- mean ``rate_rps`` over whole periods,
    peaking at ``(1 + amplitude)`` times the offered load.  Candidate
    arrivals are drawn from a Poisson process at the peak rate and kept
    with probability ``rate(t) / peak``, the standard exact sampler for
    inhomogeneous Poisson processes.

    Args:
        rate_rps: mean offered load.
        amplitude: swing of the rate curve, in ``[0, 1]``.
        period_us: curve period; by default it is chosen so the expected
            span of the generated stream covers two periods.
    """

    name = "diurnal"

    def __init__(
        self,
        rate_rps: float,
        seed: int = 0,
        amplitude: float = 0.8,
        period_us: float | None = None,
    ) -> None:
        super().__init__(rate_rps, seed)
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
        if period_us is not None and period_us <= 0:
            raise ValueError(f"period_us must be positive, got {period_us}")
        self.amplitude = float(amplitude)
        self.period_us = period_us if period_us is None else float(period_us)

    def _period_for(self, num_requests: int) -> float:
        if self.period_us is not None:
            return self.period_us
        expected_span_us = num_requests * US_PER_S / self.rate_rps
        return expected_span_us / 2.0

    def generate(self, num_requests: int) -> np.ndarray:
        self._check_count(num_requests)
        rng = self._rng()
        period = self._period_for(num_requests)
        peak_rate = self.rate_rps * (1.0 + self.amplitude)
        mean_gap_us = US_PER_S / peak_rate
        arrivals: list[float] = []
        t = 0.0
        while len(arrivals) < num_requests:
            t += rng.exponential(mean_gap_us)
            rate_t = self.rate_rps * (
                1.0 + self.amplitude * math.sin(2.0 * math.pi * t / period)
            )
            if rng.uniform() * peak_rate <= rate_t:
                arrivals.append(t)
        return np.asarray(arrivals)


_PROCESSES: dict[str, type[ArrivalProcess]] = {
    DeterministicArrivals.name: DeterministicArrivals,
    PoissonArrivals.name: PoissonArrivals,
    BurstyArrivals.name: BurstyArrivals,
    DiurnalArrivals.name: DiurnalArrivals,
}


def arrival_process_names() -> tuple[str, ...]:
    """Registered process names, sorted (CLI choices come from here)."""
    return tuple(sorted(_PROCESSES))


def make_arrival_process(
    name: str, rate_rps: float, seed: int = 0, **kwargs
) -> ArrivalProcess:
    """Build a registered arrival process by name.

    Raises:
        UnknownArrivalProcessError: for a name outside
            :func:`arrival_process_names` (a :class:`LookupError`, so
            the CLI converts it into a clean exit like the workload and
            backend lookups).
    """
    if name not in _PROCESSES:
        raise UnknownArrivalProcessError(
            f"unknown arrival process {name!r}; known: "
            f"{', '.join(arrival_process_names())}"
        )
    return _PROCESSES[name](rate_rps, seed=seed, **kwargs)
