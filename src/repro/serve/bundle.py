"""Sharded engine-image bundles: one engine image per shard.

A bundle is a directory holding ``shard<K>.npz`` engine images (the exact
:func:`~repro.hw.export_engine_image` format -- each contains shard ``K``'s
row slice of **every** served stage, serialized index plans included) plus
a ``manifest.json`` describing the pipeline.  Since v3 each manifest layer
entry carries a ``stage_kind`` tag (``"fc"`` / ``"conv"`` /
``"recurrent"``) and a ``slots`` count -- the number of consecutive image
entries the stage occupies per shard (1 for FC, ``kh*kw`` offset matrices
for a lowered conv, 8 gate matrices for an LSTM cell step).  v1/v2
manifests predate the tag and load as single-slot FC stages, so old
FC-only bundles keep cold-starting unchanged.

Stages that need non-matrix state (the recurrent stage's gate biases)
store it in per-stage ``stage<L>_aux.npz`` sidecars referenced from the
manifest.

Loading a bundle cold-starts a whole sharded server without recomputing
any index arithmetic: every shard matrix is rebuilt through
:meth:`~repro.core.BlockPermutedDiagonalMatrix.from_plan`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.engine import export_engine_image, load_engine_image

__all__ = [
    "export_model_bundle",
    "export_sharded_bundle",
    "export_staged_bundle",
    "load_sharded_bundle",
    "load_staged_bundle",
]

# v2 added per-layer ``value_dtype`` / ``fixed_point`` manifest entries
# (cross-checked against the shard images at load); v3 added the
# ``stage_kind`` / ``slots`` tags plus conv and recurrent stages.  v1
# bundles predate reduced-precision storage and always hold float64
# layers; v1/v2 entries have no tag and load as FC.
_BUNDLE_FORMAT_VERSION = 3
_BUNDLE_MIN_FORMAT_VERSION = 1
_MANIFEST_NAME = "manifest.json"


def _shard_file(shard_idx: int) -> str:
    return f"shard{shard_idx}.npz"


def _aux_file(stage_idx: int) -> str:
    return f"stage{stage_idx}_aux.npz"


def export_staged_bundle(directory, stages: list) -> None:
    """Persist a served pipeline as ``num_shards`` engine images.

    Args:
        directory: bundle directory (created if missing).
        stages: :class:`~repro.serve.server.ServedStage` objects, input to
            output, all sharded to the same shard count.  Each stage
            contributes its :meth:`manifest_entry` to the manifest, its
            :meth:`image_slots` to every shard image, and (optionally) an
            :meth:`aux_payload` sidecar.
    """
    if not stages:
        raise ValueError("cannot export an empty stage stack")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    num_shards = stages[0].num_shards
    if any(stage.num_shards != num_shards for stage in stages):
        raise ValueError(
            "all stages of one bundle must share a shard count, got "
            f"{[stage.num_shards for stage in stages]}"
        )
    for shard_idx in range(num_shards):
        slots = []
        for stage in stages:
            slots.extend(stage.image_slots(shard_idx))
        export_engine_image(directory / _shard_file(shard_idx), slots)
    entries = []
    for stage_idx, stage in enumerate(stages):
        entry = stage.manifest_entry()
        payload = stage.aux_payload()
        if payload is not None:
            entry["aux_file"] = _aux_file(stage_idx)
            np.savez(directory / entry["aux_file"], **payload)
        entries.append(entry)
    manifest = {
        "bundle_version": _BUNDLE_FORMAT_VERSION,
        "num_shards": num_shards,
        "num_layers": len(stages),
        "layers": entries,
        "shard_files": [_shard_file(idx) for idx in range(num_shards)],
    }
    with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")


def export_sharded_bundle(
    directory,
    layers: list[tuple[BlockPermutedDiagonalMatrix, str | None]],
    num_shards: int,
) -> None:
    """Persist a multi-layer FC model as ``num_shards`` engine images.

    Every layer is row-sharded with
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shards` semantics
    (balanced contiguous block-row cuts) and shard ``K`` of every layer
    lands in ``shard<K>.npz``; plan slicing means export never recomputes
    index arithmetic either.

    Args:
        directory: bundle directory (created if missing).
        layers: ``(matrix, activation)`` pairs, input to output.
        num_shards: shard count; every layer must have at least this many
            block rows.
    """
    if not layers:
        raise ValueError("cannot export an empty layer stack")
    from repro.serve.server import ShardedLayer

    export_staged_bundle(
        directory,
        [
            ShardedLayer(matrix, activation, num_shards)
            for matrix, activation in layers
        ],
    )


def export_model_bundle(
    directory,
    model,
    num_shards: int,
    value_dtype: str | None = None,
    fixed_point=None,
    input_hw: tuple[int, int] | None = None,
) -> None:
    """Export a trained model as a sharded image bundle.

    The model is walked by
    :func:`repro.nn.serialization.model_stage_specs` (which rejects
    anything the engine cannot serve) and the resulting stages -- FC,
    lowered-conv, recurrent -- are handed to :func:`export_staged_bundle`.
    ``value_dtype`` / ``fixed_point`` quantize at export (float32 or int16
    fixed-point serving copies; the training weights stay float64);
    ``input_hw`` is the first conv stage's input spatial size (required
    iff the model has conv layers).
    """
    from repro.nn.serialization import model_stage_specs
    from repro.serve.server import build_stages

    export_staged_bundle(
        directory,
        build_stages(
            model_stage_specs(model),
            num_shards,
            input_hw=input_hw,
            value_dtype=value_dtype,
            fixed_point=fixed_point,
        ),
    )


def _check_slot(
    stage_idx: int,
    shard_idx: int,
    matrix: BlockPermutedDiagonalMatrix,
    slot_activation: str | None,
    expected_shape: tuple[int, int],
    expected_activation: str | None,
    p: int,
    value_dtype: str,
    fixed_point,
) -> None:
    shard_fmt = (
        (matrix.fixed_point.total_bits, matrix.fixed_point.frac_bits)
        if matrix.fixed_point is not None
        else None
    )
    if (
        matrix.p != p
        or matrix.shape != expected_shape
        or slot_activation != expected_activation
        or matrix.value_dtype != value_dtype
        or shard_fmt != fixed_point
    ):
        raise ValueError(
            f"layer {stage_idx} shard {shard_idx}: image "
            f"(shape={matrix.shape}, p={matrix.p}, "
            f"activation={slot_activation!r}, "
            f"value_dtype={matrix.value_dtype!r}) does not match "
            f"the manifest"
        )


def load_staged_bundle(
    directory,
    missing_backend: str = "error",
) -> tuple[list, dict]:
    """Reload a bundle as ready-to-serve stage objects.

    Every shard matrix carries its deserialized index plan -- no index
    arithmetic is recomputed -- and shard shapes, dtypes, and stage
    layouts are cross-checked against the manifest so a truncated or
    mixed-up bundle fails loudly.  v1/v2 manifests (no ``stage_kind``)
    load every entry as a single-slot FC stage.

    Args:
        directory: bundle directory written by one of the exporters.
        missing_backend: forwarded to
            :func:`~repro.hw.load_engine_image` (``"error"`` or
            ``"fallback"``) for layers pinned to an unavailable backend.

    Returns:
        ``(stages, manifest)`` where ``stages`` are
        :class:`~repro.serve.server.ServedStage` objects ready to hand to
        :class:`~repro.serve.server.ModelServer`.
    """
    from repro.serve.server import (
        LoweredConvStage,
        RecurrentStage,
        ShardedLayer,
        _GATES,
    )

    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"no {_MANIFEST_NAME} in {directory} -- not a sharded bundle"
        )
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = int(manifest.get("bundle_version", -1))
    if not _BUNDLE_MIN_FORMAT_VERSION <= version <= _BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle version {version} (supported: "
            f"{_BUNDLE_MIN_FORMAT_VERSION}..{_BUNDLE_FORMAT_VERSION})"
        )
    num_shards = int(manifest["num_shards"])
    num_layers = int(manifest["num_layers"])
    specs = manifest["layers"]
    if len(specs) != num_layers:
        raise ValueError(
            f"manifest lists {len(specs)} layers, says {num_layers}"
        )
    shard_images = [
        load_engine_image(
            directory / shard_file, missing_backend=missing_backend
        )
        for shard_file in manifest["shard_files"]
    ]
    slots_per_stage = [int(spec.get("slots", 1)) for spec in specs]
    total_slots = sum(slots_per_stage)
    if len(shard_images) != num_shards or any(
        len(image) != total_slots for image in shard_images
    ):
        raise ValueError(
            f"bundle {directory} does not match its manifest "
            f"({num_shards} shards x {total_slots} image slots)"
        )
    stages = []
    cursor = 0
    for stage_idx, spec in enumerate(specs):
        kind = spec.get("stage_kind", "fc")
        slots = slots_per_stage[stage_idx]
        activation = spec["activation"]
        p = int(spec["p"])
        m, n = (int(v) for v in spec["shape"])
        # v1 manifests predate value dtypes: their images store float64.
        value_dtype = spec.get("value_dtype", "float64")
        fixed_point = (
            tuple(int(v) for v in spec["fixed_point"])
            if spec.get("fixed_point") is not None
            else None
        )
        bounds = spec["shard_block_bounds"]
        # Flat-slot layout: shard K's entries ``cursor..cursor+slots`` all
        # belong to this stage and share its row bounds.
        shard_slots: list[list[BlockPermutedDiagonalMatrix]] = []
        covered = 0
        for shard_idx in range(num_shards):
            start, stop = bounds[shard_idx]
            expected_m = min((stop - start) * p, m - start * p)
            matrices = []
            for slot in range(slots):
                matrix, slot_activation = shard_images[shard_idx][
                    cursor + slot
                ]
                if kind == "recurrent":
                    expected_n = n if slot < len(_GATES) else m
                else:
                    expected_n = n
                _check_slot(
                    stage_idx,
                    shard_idx,
                    matrix,
                    slot_activation,
                    (expected_m, expected_n),
                    activation if kind == "fc" else None,
                    p,
                    value_dtype,
                    fixed_point,
                )
                matrices.append(matrix)
            covered += matrices[0].shape[0]
            shard_slots.append(matrices)
        if covered != m:
            raise ValueError(
                f"layer {stage_idx}: shards cover {covered} rows, "
                f"manifest says {m}"
            )
        cursor += slots
        if kind == "fc":
            if slots != 1:
                raise ValueError(
                    f"layer {stage_idx}: FC stages hold 1 slot, got {slots}"
                )
            stages.append(
                ShardedLayer.from_shards(
                    [matrices[0] for matrices in shard_slots], activation
                )
            )
        elif kind == "conv":
            stages.append(
                LoweredConvStage.from_shard_slots(
                    shard_slots,
                    activation,
                    channels=(m, n),
                    kernel_size=tuple(
                        int(v) for v in spec["kernel_size"]
                    ),
                    input_hw=tuple(int(v) for v in spec["input_hw"]),
                    stride=int(spec["stride"]),
                    padding=int(spec["padding"]),
                    pool=(
                        int(spec["pool"])
                        if spec.get("pool") is not None
                        else None
                    ),
                )
            )
        elif kind == "recurrent":
            with np.load(directory / spec["aux_file"]) as aux:
                biases = {gate: aux[f"bias_{gate}"] for gate in _GATES}
            stages.append(
                RecurrentStage.from_shard_slots(
                    shard_slots,
                    biases,
                    input_size=int(spec["input_size"]),
                    hidden_size=int(spec["hidden_size"]),
                )
            )
        else:
            raise ValueError(
                f"layer {stage_idx}: unknown stage_kind {kind!r}"
            )
    return stages, manifest


def load_sharded_bundle(
    directory,
    missing_backend: str = "error",
) -> tuple[list[tuple[list[BlockPermutedDiagonalMatrix], str | None]], dict]:
    """Reload an FC bundle: per layer, its shard matrices and activation.

    The pre-v3 loader shape, kept for FC-only callers.  Bundles holding
    conv or recurrent stages have no ``(shards, activation)`` form --
    load those through :func:`load_staged_bundle`.

    Returns:
        ``(layers, manifest)`` where ``layers[l]`` is
        ``(shard_matrices, activation)``.
    """
    from repro.serve.server import ShardedLayer

    stages, manifest = load_staged_bundle(
        directory, missing_backend=missing_backend
    )
    if any(not isinstance(stage, ShardedLayer) for stage in stages):
        kinds = sorted({stage.stage_kind for stage in stages})
        raise ValueError(
            f"bundle holds non-FC stages {kinds}; use load_staged_bundle"
        )
    return [(stage.shards, stage.activation) for stage in stages], manifest
