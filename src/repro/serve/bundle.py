"""Sharded engine-image bundles: one engine image per shard.

A bundle is a directory holding ``shard<K>.npz`` engine images (the exact
:func:`~repro.hw.export_engine_image` format -- each contains shard ``K``'s
row slice of **every** layer, serialized index plans included) plus a
``manifest.json`` describing the model: layer shapes, block sizes,
activations, per-layer value dtypes (float64 / float32 / int16
fixed-point storage rides through the shard images untouched), and the
block-row bounds each shard covers.  Loading a bundle
therefore cold-starts a whole sharded server without recomputing any index
arithmetic: every shard matrix is rebuilt through
:meth:`~repro.core.BlockPermutedDiagonalMatrix.from_plan`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import BlockPermutedDiagonalMatrix, row_shard_bounds
from repro.hw.engine import export_engine_image, load_engine_image

__all__ = ["export_model_bundle", "export_sharded_bundle", "load_sharded_bundle"]

# v2 added per-layer ``value_dtype`` / ``fixed_point`` manifest entries
# (cross-checked against the shard images at load); v1 bundles predate
# reduced-precision storage and always hold float64 layers.
_BUNDLE_FORMAT_VERSION = 2
_BUNDLE_MIN_FORMAT_VERSION = 1
_MANIFEST_NAME = "manifest.json"


def _shard_file(shard_idx: int) -> str:
    return f"shard{shard_idx}.npz"


def export_sharded_bundle(
    directory,
    layers: list[tuple[BlockPermutedDiagonalMatrix, str | None]],
    num_shards: int,
) -> None:
    """Persist a multi-layer model as ``num_shards`` engine images.

    Every layer is row-sharded with
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shards` semantics
    (balanced contiguous block-row cuts) and shard ``K`` of every layer
    lands in ``shard<K>.npz``; plan slicing means export never recomputes
    index arithmetic either.

    Args:
        directory: bundle directory (created if missing).
        layers: ``(matrix, activation)`` pairs, input to output.
        num_shards: shard count; every layer must have at least this many
            block rows.
    """
    if not layers:
        raise ValueError("cannot export an empty layer stack")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bounds_per_layer = [
        row_shard_bounds(matrix.mb, num_shards) for matrix, _ in layers
    ]
    for shard_idx in range(num_shards):
        shard_layers = [
            (matrix.row_shard(*bounds_per_layer[layer_idx][shard_idx]), act)
            for layer_idx, (matrix, act) in enumerate(layers)
        ]
        export_engine_image(directory / _shard_file(shard_idx), shard_layers)
    manifest = {
        "bundle_version": _BUNDLE_FORMAT_VERSION,
        "num_shards": num_shards,
        "num_layers": len(layers),
        "layers": [
            {
                "shape": list(matrix.shape),
                "p": matrix.p,
                "activation": activation,
                "value_dtype": matrix.value_dtype,
                "fixed_point": (
                    [
                        matrix.fixed_point.total_bits,
                        matrix.fixed_point.frac_bits,
                    ]
                    if matrix.fixed_point is not None
                    else None
                ),
                "shard_block_bounds": [
                    list(bounds) for bounds in bounds_per_layer[layer_idx]
                ],
            }
            for layer_idx, (matrix, activation) in enumerate(layers)
        ],
        "shard_files": [_shard_file(idx) for idx in range(num_shards)],
    }
    with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")


def export_model_bundle(
    directory,
    model,
    num_shards: int,
    value_dtype: str | None = None,
    fixed_point=None,
) -> None:
    """Export a trained FC model as a sharded image bundle.

    The model is flattened to ``(matrix, activation)`` pairs by
    :func:`repro.nn.serialization.model_engine_layers` (which rejects
    anything the engine cannot serve) and handed to
    :func:`export_sharded_bundle`.  ``value_dtype`` / ``fixed_point``
    quantize at export (float32 or int16 fixed-point serving copies;
    the training weights stay float64).
    """
    from repro.nn.serialization import model_engine_layers

    export_sharded_bundle(
        directory,
        model_engine_layers(model, value_dtype=value_dtype, fixed_point=fixed_point),
        num_shards,
    )


def load_sharded_bundle(
    directory,
    missing_backend: str = "error",
) -> tuple[list[tuple[list[BlockPermutedDiagonalMatrix], str | None]], dict]:
    """Reload a bundle: per layer, its shard matrices and activation.

    Every shard matrix carries its deserialized index plan -- no index
    arithmetic is recomputed -- and shard shapes are cross-checked against
    the manifest so a truncated or mixed-up bundle fails loudly.

    Args:
        directory: bundle directory written by :func:`export_sharded_bundle`.
        missing_backend: forwarded to
            :func:`~repro.hw.load_engine_image` (``"error"`` or
            ``"fallback"``) for layers pinned to an unavailable backend.

    Returns:
        ``(layers, manifest)`` where ``layers[l]`` is
        ``(shard_matrices, activation)``.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"no {_MANIFEST_NAME} in {directory} -- not a sharded bundle"
        )
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = int(manifest.get("bundle_version", -1))
    if not _BUNDLE_MIN_FORMAT_VERSION <= version <= _BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle version {version} (supported: "
            f"{_BUNDLE_MIN_FORMAT_VERSION}..{_BUNDLE_FORMAT_VERSION})"
        )
    num_shards = int(manifest["num_shards"])
    num_layers = int(manifest["num_layers"])
    shard_images = [
        load_engine_image(
            directory / shard_file, missing_backend=missing_backend
        )
        for shard_file in manifest["shard_files"]
    ]
    if len(shard_images) != num_shards or any(
        len(image) != num_layers for image in shard_images
    ):
        raise ValueError(
            f"bundle {directory} does not match its manifest "
            f"({num_shards} shards x {num_layers} layers)"
        )
    layers: list[tuple[list[BlockPermutedDiagonalMatrix], str | None]] = []
    for layer_idx, spec in enumerate(manifest["layers"]):
        shards = []
        activation = spec["activation"]
        p = int(spec["p"])
        m, n = (int(v) for v in spec["shape"])
        # v1 manifests predate value dtypes: their images store float64.
        value_dtype = spec.get("value_dtype", "float64")
        fixed_point = (
            tuple(int(v) for v in spec["fixed_point"])
            if spec.get("fixed_point") is not None
            else None
        )
        covered = 0
        for shard_idx in range(num_shards):
            matrix, shard_activation = shard_images[shard_idx][layer_idx]
            start, stop = spec["shard_block_bounds"][shard_idx]
            expected_m = min((stop - start) * p, m - start * p)
            shard_fmt = (
                (matrix.fixed_point.total_bits, matrix.fixed_point.frac_bits)
                if matrix.fixed_point is not None
                else None
            )
            if (
                matrix.p != p
                or matrix.shape != (expected_m, n)
                or shard_activation != activation
                or matrix.value_dtype != value_dtype
                or shard_fmt != fixed_point
            ):
                raise ValueError(
                    f"layer {layer_idx} shard {shard_idx}: image "
                    f"(shape={matrix.shape}, p={matrix.p}, "
                    f"activation={shard_activation!r}, "
                    f"value_dtype={matrix.value_dtype!r}) does not match "
                    f"the manifest"
                )
            covered += matrix.shape[0]
            shards.append(matrix)
        if covered != m:
            raise ValueError(
                f"layer {layer_idx}: shards cover {covered} rows, "
                f"manifest says {m}"
            )
        layers.append((shards, activation))
    return layers, manifest
