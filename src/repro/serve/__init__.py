"""Batched, sharded multi-engine serving on top of engine images.

The deployment layer of the reproduction: a multi-layer PD model executes
across an array of :class:`~repro.hw.PermDNNEngine` instances, each layer
row-sharded so every engine owns a contiguous block-row slice (the cached
index plan is *sliced*, never recomputed, and shard values alias the layer
storage).  Requests flow through a micro-batching queue and micro-batches
pipeline between the per-layer shard arrays.

- :class:`ModelServer` -- submit / submit_many / drain front end with
  per-layer, per-shard and per-request statistics, plus admission
  control (bounded queue, reject-newest shedding) for graceful
  degradation past the saturation knee.
- :class:`ShardedLayer` -- one layer split across shard engines.
- :class:`MicroBatcher` / :class:`BatchAssembler` / :class:`Request` /
  :class:`MicroBatch` -- the deterministic, order-preserving batching
  queue (offline plan and streaming forms).
- :mod:`repro.serve.traffic` -- seeded open-loop arrival processes
  (deterministic / Poisson / bursty / diurnal) for tail-latency
  benchmarking.
- :func:`export_sharded_bundle` / :func:`load_sharded_bundle` -- one
  engine image per shard plus a manifest; cold starts never recompute
  index arithmetic.
- :func:`run_serving_benchmark` / :func:`run_open_loop_sweep` -- the
  closed-loop and open-loop measurements behind ``repro serve-bench``
  and ``benchmarks/bench_serving.py``, including
  :func:`max_sustainable_qps` knee finding under an SLO.
"""

from repro.serve.batching import BatchAssembler, MicroBatch, MicroBatcher, Request
from repro.serve.bench import (
    OpenLoopPoint,
    OpenLoopReport,
    ServingBenchReport,
    build_alexnet_fc_stack,
    format_open_loop_report,
    format_report,
    make_requests,
    max_sustainable_qps,
    run_open_loop_point,
    run_open_loop_sweep,
    run_serving_benchmark,
    run_serving_sweep,
)
from repro.serve.bundle import (
    export_model_bundle,
    export_sharded_bundle,
    load_sharded_bundle,
)
from repro.nn.serialization import UnsupportedLayerError
from repro.serve.server import (
    EmptyServeReportError,
    LayerShardStats,
    ModelServer,
    ServeReport,
    ShardedLayer,
)
from repro.serve.traffic import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UnknownArrivalProcessError,
    arrival_process_names,
    make_arrival_process,
)

__all__ = [
    "ArrivalProcess",
    "BatchAssembler",
    "BurstyArrivals",
    "DeterministicArrivals",
    "DiurnalArrivals",
    "EmptyServeReportError",
    "LayerShardStats",
    "MicroBatch",
    "MicroBatcher",
    "ModelServer",
    "OpenLoopPoint",
    "OpenLoopReport",
    "PoissonArrivals",
    "Request",
    "ServeReport",
    "ServingBenchReport",
    "ShardedLayer",
    "UnknownArrivalProcessError",
    "UnsupportedLayerError",
    "arrival_process_names",
    "build_alexnet_fc_stack",
    "export_model_bundle",
    "export_sharded_bundle",
    "format_open_loop_report",
    "format_report",
    "load_sharded_bundle",
    "make_requests",
    "make_arrival_process",
    "max_sustainable_qps",
    "run_open_loop_point",
    "run_open_loop_sweep",
    "run_serving_benchmark",
    "run_serving_sweep",
]
