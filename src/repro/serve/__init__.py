"""Batched, sharded multi-engine serving on top of engine images.

The deployment layer of the reproduction: a multi-layer PD model executes
across an array of :class:`~repro.hw.PermDNNEngine` instances, each layer
row-sharded so every engine owns a contiguous block-row slice (the cached
index plan is *sliced*, never recomputed, and shard values alias the layer
storage).  Requests flow through a micro-batching queue and micro-batches
pipeline between the per-layer shard arrays.

- :class:`ModelServer` -- submit / submit_many / drain front end with
  per-layer, per-shard and per-request statistics.
- :class:`ShardedLayer` -- one layer split across shard engines.
- :class:`MicroBatcher` / :class:`Request` / :class:`MicroBatch` -- the
  deterministic, order-preserving batching queue.
- :func:`export_sharded_bundle` / :func:`load_sharded_bundle` -- one
  engine image per shard plus a manifest; cold starts never recompute
  index arithmetic.
- :func:`run_serving_benchmark` -- the sharded-vs-baseline measurement
  behind ``repro serve-bench`` and ``benchmarks/bench_serving.py``.
"""

from repro.serve.batching import MicroBatch, MicroBatcher, Request
from repro.serve.bench import (
    ServingBenchReport,
    build_alexnet_fc_stack,
    format_report,
    make_requests,
    run_serving_benchmark,
    run_serving_sweep,
)
from repro.serve.bundle import (
    export_model_bundle,
    export_sharded_bundle,
    load_sharded_bundle,
)
from repro.serve.server import (
    LayerShardStats,
    ModelServer,
    ServeReport,
    ShardedLayer,
)

__all__ = [
    "LayerShardStats",
    "MicroBatch",
    "MicroBatcher",
    "ModelServer",
    "Request",
    "ServeReport",
    "ServingBenchReport",
    "ShardedLayer",
    "build_alexnet_fc_stack",
    "export_model_bundle",
    "export_sharded_bundle",
    "format_report",
    "load_sharded_bundle",
    "make_requests",
    "run_serving_benchmark",
    "run_serving_sweep",
]
