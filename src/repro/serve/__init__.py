"""Batched, sharded multi-engine serving on top of engine images.

The deployment layer of the reproduction: a multi-layer PD model executes
across an array of :class:`~repro.hw.PermDNNEngine` instances, each layer
row-sharded so every engine owns a contiguous block-row slice (the cached
index plan is *sliced*, never recomputed, and shard values alias the layer
storage).  Requests flow through a micro-batching queue and micro-batches
pipeline between the per-layer shard arrays.

- :class:`ModelServer` -- submit / submit_many / drain front end with
  per-layer, per-shard and per-request statistics, plus admission
  control (bounded queue, reject-newest shedding) for graceful
  degradation past the saturation knee.
- :class:`ServedStage` -- the stage protocol, with three
  implementations: :class:`ShardedLayer` (one FC layer split across
  shard engines), :class:`LoweredConvStage` (a PD convolution lowered
  to per-offset FC batches, row-sharded over output channels), and
  :class:`RecurrentStage` (one LSTM-cell timestep, gate matrices
  row-sharded over hidden units).
- :class:`MicroBatcher` / :class:`BatchAssembler` / :class:`Request` /
  :class:`MicroBatch` -- the deterministic, order-preserving batching
  queue (offline plan and streaming forms).
- :mod:`repro.serve.traffic` -- seeded open-loop arrival processes
  (deterministic / Poisson / bursty / diurnal) for tail-latency
  benchmarking.
- :func:`export_sharded_bundle` / :func:`load_sharded_bundle` -- one
  engine image per shard plus a manifest; cold starts never recompute
  index arithmetic.
- :func:`run_serving_benchmark` / :func:`run_open_loop_sweep` -- the
  closed-loop and open-loop measurements behind ``repro serve-bench``
  and ``benchmarks/bench_serving.py``, including
  :func:`max_sustainable_qps` knee finding under an SLO.
"""

from repro.serve.batching import BatchAssembler, MicroBatch, MicroBatcher, Request
from repro.serve.bench import (
    MixedClassStats,
    MixedTrafficReport,
    OpenLoopPoint,
    OpenLoopReport,
    ServingBenchReport,
    WorkloadMatrixRow,
    WorkloadSpec,
    build_alexnet_fc_stack,
    build_workload,
    format_mixed_report,
    format_open_loop_report,
    format_report,
    format_workload_matrix,
    make_requests,
    max_sustainable_qps,
    run_mixed_traffic,
    run_open_loop_point,
    run_open_loop_sweep,
    run_serving_benchmark,
    run_serving_sweep,
    run_workload_matrix,
    workload_names,
)
from repro.serve.bundle import (
    export_model_bundle,
    export_sharded_bundle,
    export_staged_bundle,
    load_sharded_bundle,
    load_staged_bundle,
)
from repro.nn.serialization import UnsupportedLayerError
from repro.serve.server import (
    EmptyServeReportError,
    LayerShardStats,
    LoweredConvStage,
    ModelServer,
    RecurrentStage,
    ServeReport,
    ServedStage,
    ShardedLayer,
    build_stages,
)
from repro.serve.traffic import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UnknownArrivalProcessError,
    arrival_process_names,
    make_arrival_process,
)

__all__ = [
    "ArrivalProcess",
    "BatchAssembler",
    "BurstyArrivals",
    "DeterministicArrivals",
    "DiurnalArrivals",
    "EmptyServeReportError",
    "LayerShardStats",
    "MixedClassStats",
    "MixedTrafficReport",
    "LoweredConvStage",
    "MicroBatch",
    "MicroBatcher",
    "ModelServer",
    "OpenLoopPoint",
    "OpenLoopReport",
    "PoissonArrivals",
    "RecurrentStage",
    "Request",
    "ServeReport",
    "ServedStage",
    "ServingBenchReport",
    "ShardedLayer",
    "UnknownArrivalProcessError",
    "UnsupportedLayerError",
    "WorkloadMatrixRow",
    "WorkloadSpec",
    "arrival_process_names",
    "build_alexnet_fc_stack",
    "build_stages",
    "build_workload",
    "export_model_bundle",
    "export_sharded_bundle",
    "export_staged_bundle",
    "format_mixed_report",
    "format_open_loop_report",
    "format_report",
    "format_workload_matrix",
    "load_sharded_bundle",
    "load_staged_bundle",
    "make_requests",
    "make_arrival_process",
    "max_sustainable_qps",
    "run_mixed_traffic",
    "run_open_loop_point",
    "run_open_loop_sweep",
    "run_serving_benchmark",
    "run_serving_sweep",
    "run_workload_matrix",
    "workload_names",
]
