"""Micro-batching queue for the sharded serving runtime.

Requests accumulate into micro-batches under two limits: a batch closes as
soon as it holds ``max_batch_size`` requests, or when the next request in
the queue arrived more than ``flush_deadline_us`` after the batch's first
member (the deadline flush that bounds queueing latency under light
traffic).  The policy is a pure function of the request arrival times, so
a fixed submission sequence always produces the same batches -- the
determinism the serving tests pin down -- and batches preserve submission
order end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchAssembler", "MicroBatch", "MicroBatcher", "Request"]


@dataclass(frozen=True)
class Request:
    """One queued inference request.

    Attributes:
        rid: server-assigned id; also the position in the output order.
        x: input activation vector.
        arrival_us: simulated arrival time in microseconds.
    """

    rid: int
    x: np.ndarray
    arrival_us: float


@dataclass(frozen=True)
class MicroBatch:
    """A closed batch, ready to enter the layer pipeline at ``ready_us``.

    ``ready_us`` is the arrival of the last member for a full batch and
    ``first_arrival + flush_deadline_us`` for a deadline flush -- the
    instant the batcher hands the batch to the first layer.
    """

    requests: tuple[Request, ...]
    ready_us: float

    @property
    def size(self) -> int:
        return len(self.requests)

    def stacked_inputs(self) -> np.ndarray:
        """Member inputs stacked into a ``(size, n)`` batch."""
        return np.stack([request.x for request in self.requests])


class MicroBatcher:
    """Order-preserving micro-batch former.

    Args:
        max_batch_size: close a batch once it holds this many requests.
        flush_deadline_us: close a batch once the next request arrives more
            than this many microseconds after the batch opened (and stamp
            the batch ready at ``open + deadline``).
    """

    def __init__(
        self, max_batch_size: int = 16, flush_deadline_us: float = 50.0
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if flush_deadline_us < 0:
            raise ValueError(
                f"flush_deadline_us must be non-negative, got {flush_deadline_us}"
            )
        self.max_batch_size = max_batch_size
        self.flush_deadline_us = flush_deadline_us

    def plan(self, requests: list[Request]) -> list[MicroBatch]:
        """Cut an arrival-ordered request list into micro-batches.

        Requests must be in non-decreasing ``arrival_us`` order (the
        server's submission queue guarantees it); batches keep that order,
        so concatenating the batches reproduces the request sequence.

        The plan honors arrival timestamps: a batch is never stamped
        ready before its last member arrived -- a full batch closes at
        its last arrival, and a deadline flush (``open + deadline``) by
        construction postdates every member it covers.
        """
        assembler = self.assembler()
        batches: list[MicroBatch] = []
        for request in requests:
            batches.extend(assembler.offer(request))
        tail = assembler.finish()
        if tail is not None:
            batches.append(tail)
        return batches

    def assembler(self) -> "BatchAssembler":
        """An online former with this batcher's policy (see below)."""
        return BatchAssembler(self)

    def _close(self, pending: list[Request], full: bool) -> MicroBatch:
        if full:
            ready = pending[-1].arrival_us
        else:
            ready = pending[0].arrival_us + self.flush_deadline_us
        return MicroBatch(tuple(pending), ready_us=ready)


class BatchAssembler:
    """Streaming micro-batch former -- :meth:`MicroBatcher.plan`, one
    request at a time.

    ``plan`` is implemented on top of this class, so the two can never
    drift; the point of the streaming form is
    :meth:`~repro.serve.ModelServer.drain`, which must interleave batch
    formation with admission control (a shed decision needs to know the
    in-flight population *at that request's arrival instant*, which means
    deadline flushes of earlier batches have to be applied first).

    Typical loop::

        assembler = batcher.assembler()
        for request in requests:
            run(assembler.poll(request.arrival_us))   # deadline flush
            if admit(request):
                run(*assembler.offer(request))        # fill flush
        run(assembler.finish())                       # tail flush
    """

    def __init__(self, batcher: MicroBatcher) -> None:
        self._batcher = batcher
        self._pending: list[Request] = []

    @property
    def pending_count(self) -> int:
        """Requests sitting in the currently-forming batch."""
        return len(self._pending)

    def poll(self, now_us: float) -> MicroBatch | None:
        """Close the forming batch if ``now_us`` is past its deadline.

        Idempotent: once the batch flushed (or none is forming), further
        polls at the same instant return ``None``.
        """
        if (
            self._pending
            and now_us
            > self._pending[0].arrival_us + self._batcher.flush_deadline_us
        ):
            return self._flush(full=False)
        return None

    def offer(self, request: Request) -> list[MicroBatch]:
        """Admit one request; returns every batch this closed (0..2).

        A request arriving past the forming batch's deadline first
        flushes that batch (same as :meth:`poll`), then opens a new one;
        filling the batch to ``max_batch_size`` closes it at the
        request's own arrival time.
        """
        closed: list[MicroBatch] = []
        flushed = self.poll(request.arrival_us)
        if flushed is not None:
            closed.append(flushed)
        if self._pending and request.arrival_us < self._pending[-1].arrival_us:
            raise ValueError(
                "requests must be ordered by non-decreasing arrival time"
            )
        self._pending.append(request)
        if len(self._pending) == self._batcher.max_batch_size:
            closed.append(self._flush(full=True))
        return closed

    def finish(self) -> MicroBatch | None:
        """Flush the tail batch (stream over); ``None`` if empty."""
        if self._pending:
            return self._flush(full=False)
        return None

    def _flush(self, full: bool) -> MicroBatch:
        batch = self._batcher._close(self._pending, full=full)
        self._pending = []
        return batch
