"""Micro-batching queue for the sharded serving runtime.

Requests accumulate into micro-batches under two limits: a batch closes as
soon as it holds ``max_batch_size`` requests, or when the next request in
the queue arrived more than ``flush_deadline_us`` after the batch's first
member (the deadline flush that bounds queueing latency under light
traffic).  The policy is a pure function of the request arrival times, so
a fixed submission sequence always produces the same batches -- the
determinism the serving tests pin down -- and batches preserve submission
order end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MicroBatch", "MicroBatcher", "Request"]


@dataclass(frozen=True)
class Request:
    """One queued inference request.

    Attributes:
        rid: server-assigned id; also the position in the output order.
        x: input activation vector.
        arrival_us: simulated arrival time in microseconds.
    """

    rid: int
    x: np.ndarray
    arrival_us: float


@dataclass(frozen=True)
class MicroBatch:
    """A closed batch, ready to enter the layer pipeline at ``ready_us``.

    ``ready_us`` is the arrival of the last member for a full batch and
    ``first_arrival + flush_deadline_us`` for a deadline flush -- the
    instant the batcher hands the batch to the first layer.
    """

    requests: tuple[Request, ...]
    ready_us: float

    @property
    def size(self) -> int:
        return len(self.requests)

    def stacked_inputs(self) -> np.ndarray:
        """Member inputs stacked into a ``(size, n)`` batch."""
        return np.stack([request.x for request in self.requests])


class MicroBatcher:
    """Order-preserving micro-batch former.

    Args:
        max_batch_size: close a batch once it holds this many requests.
        flush_deadline_us: close a batch once the next request arrives more
            than this many microseconds after the batch opened (and stamp
            the batch ready at ``open + deadline``).
    """

    def __init__(
        self, max_batch_size: int = 16, flush_deadline_us: float = 50.0
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if flush_deadline_us < 0:
            raise ValueError(
                f"flush_deadline_us must be non-negative, got {flush_deadline_us}"
            )
        self.max_batch_size = max_batch_size
        self.flush_deadline_us = flush_deadline_us

    def plan(self, requests: list[Request]) -> list[MicroBatch]:
        """Cut an arrival-ordered request list into micro-batches.

        Requests must be in non-decreasing ``arrival_us`` order (the
        server's submission queue guarantees it); batches keep that order,
        so concatenating the batches reproduces the request sequence.
        """
        batches: list[MicroBatch] = []
        pending: list[Request] = []
        for request in requests:
            if pending and request.arrival_us < pending[-1].arrival_us:
                raise ValueError(
                    "requests must be ordered by non-decreasing arrival time"
                )
            if (
                pending
                and request.arrival_us
                > pending[0].arrival_us + self.flush_deadline_us
            ):
                batches.append(self._close(pending, full=False))
                pending = []
            pending.append(request)
            if len(pending) == self.max_batch_size:
                batches.append(self._close(pending, full=True))
                pending = []
        if pending:
            batches.append(self._close(pending, full=False))
        return batches

    def _close(self, pending: list[Request], full: bool) -> MicroBatch:
        if full:
            ready = pending[-1].arrival_us
        else:
            ready = pending[0].arrival_us + self.flush_deadline_us
        return MicroBatch(tuple(pending), ready_us=ready)
