"""Storage-cost accounting and serialization for PD matrices.

Implements the model behind Fig. 4 of the paper: an *unstructured* sparse
weight costs its value bits **plus** index bits (EIE stores a 4-bit virtual
weight tag plus 4 bits of relative position, i.e. the index doubles the
cost), while a PD weight costs its value bits only -- positions are
recomputed from ``(k_l, p)`` with a modulo, and the per-block ``k_l``
(``ceil(log2 p)`` bits) is amortized over ``p`` weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.block_perm_diag import BlockPermutedDiagonalMatrix

__all__ = [
    "StorageReport",
    "dense_storage_bits",
    "load_bpd",
    "pd_storage_bits",
    "save_bpd",
    "unstructured_sparse_storage_bits",
]


def dense_storage_bits(m: int, n: int, weight_bits: int = 32) -> int:
    """Bits to store an uncompressed dense ``m x n`` matrix."""
    return m * n * weight_bits


def pd_storage_bits(
    m: int,
    n: int,
    p: int,
    weight_bits: int = 32,
    include_permutation: bool = True,
) -> int:
    """Bits to store an ``m x n`` block-PD matrix with block size ``p``.

    ``m*n/p`` values plus (optionally) one ``ceil(log2 p)``-bit permutation
    parameter per block.  Padded blocks are counted like the paper does
    (padded zeros are "not involved in computation/storage", but their
    block still needs its diagonal stored once allocated); with ``m, n``
    multiples of ``p`` this is exactly ``m*n/p`` weights.
    """
    mb, nb = -(-m // p), -(-n // p)
    value_bits = mb * nb * p * weight_bits
    perm_bits = mb * nb * max(1, math.ceil(math.log2(p))) if p > 1 else 0
    return value_bits + (perm_bits if include_permutation else 0)


def unstructured_sparse_storage_bits(
    nnz: int,
    weight_bits: int = 4,
    index_bits: int = 4,
    num_columns: int = 0,
    pointer_bits: int = 32,
) -> int:
    """Bits for an EIE-style unstructured sparse matrix.

    Every non-zero stores ``weight_bits`` (virtual weight tag) plus
    ``index_bits`` (relative row position); CSC column pointers add
    ``pointer_bits`` per column if ``num_columns`` is given.
    """
    return nnz * (weight_bits + index_bits) + num_columns * pointer_bits


@dataclass(frozen=True)
class StorageReport:
    """Storage accounting for one compressed layer.

    Attributes:
        dense_bits: uncompressed cost.
        compressed_bits: cost under the chosen representation.
    """

    dense_bits: int
    compressed_bits: int

    @property
    def compression_ratio(self) -> float:
        return self.dense_bits / self.compressed_bits

    @property
    def dense_megabytes(self) -> float:
        return self.dense_bits / 8 / 1e6

    @property
    def compressed_megabytes(self) -> float:
        return self.compressed_bits / 8 / 1e6

    @staticmethod
    def for_pd_layer(
        m: int, n: int, p: int, dense_bits: int = 32, weight_bits: int = 32
    ) -> "StorageReport":
        """Report for one FC layer compressed with block size ``p``.

        ``dense_bits`` is the precision of the uncompressed reference
        (the paper compares against 32-bit float); ``weight_bits`` is the
        stored precision of the PD values (32 for float, 16 for fixed).
        """
        return StorageReport(
            dense_storage_bits(m, n, dense_bits),
            pd_storage_bits(m, n, p, weight_bits),
        )


def save_bpd(
    path: str,
    matrix: BlockPermutedDiagonalMatrix,
    include_plan: bool = False,
) -> None:
    """Serialize a block-PD matrix to ``.npz`` (packed values + metadata).

    With ``include_plan`` the warmed index plan rides along, so
    :func:`load_bpd` rebuilds the matrix via
    :meth:`~repro.core.block_perm_diag.BlockPermutedDiagonalMatrix.from_plan`
    without recomputing any index arithmetic.
    """
    payload = {
        "q": matrix.to_q(),
        "ks": np.asarray(matrix.ks),
        "p": np.int64(matrix.p),
        "shape": np.asarray(matrix.shape, dtype=np.int64),
    }
    if include_plan:
        payload["plan"] = np.frombuffer(matrix.plan_bytes(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_bpd(path: str) -> BlockPermutedDiagonalMatrix:
    """Load a matrix produced by :func:`save_bpd` (reusing any saved plan)."""
    with np.load(path) as archive:
        if "plan" in archive.files:
            mb, nb = archive["ks"].shape
            return BlockPermutedDiagonalMatrix.from_plan(
                archive["plan"].tobytes(),
                archive["q"].reshape(mb, nb, int(archive["p"])),
            )
        shape = tuple(int(v) for v in archive["shape"])
        return BlockPermutedDiagonalMatrix.from_q(
            archive["q"], shape, int(archive["p"]), archive["ks"]
        )
