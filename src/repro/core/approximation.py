"""Optimal permuted-diagonal approximation of dense weights (Sec. III-F).

The paper's two-step flow for compressing a *pre-trained* model is

1. *permuted diagonal approximation* -- keep only the entries on the desired
   permuted diagonal positions ("the optimal approximation in terms of l2
   norm measurement on the approximation error"), then
2. re-train / fine-tune with the structure-preserving update rules.

Step 1 is implemented here.  For a **fixed** permutation parameter the L2
projection just keeps the on-support entries.  We additionally provide the
jointly optimal choice *over k as well*: for each block, pick the shift whose
permuted diagonal captures the largest energy (sum of squares).  Any other
choice of kept entries of the same cardinality leaves at least as much energy
in the residual, so this is the global L2 optimum over (k, values).
"""

from __future__ import annotations

import numpy as np

from repro.core.block_perm_diag import BlockPermutedDiagonalMatrix
from repro.core.conv_tensor import BlockPermDiagTensor4D
from repro.core.permutation import PermutationSpec

__all__ = [
    "approximate_pd",
    "approximate_pd_tensor",
    "best_permutation_parameters",
    "diagonal_energies",
]


def diagonal_energies(dense: np.ndarray, p: int) -> np.ndarray:
    """Energy captured by each candidate shift for every block.

    Args:
        dense: matrix of shape ``(m, n)`` (zero-padded internally).
        p: block size.

    Returns:
        Array of shape ``(mb, nb, p)``: entry ``[bi, bj, s]`` is
        ``sum_c dense[bi*p + c, bj*p + (c+s) % p] ** 2``.
    """
    dense = np.asarray(dense, dtype=np.float64)
    m, n = dense.shape
    mb, nb = -(-m // p), -(-n // p)
    padded = np.zeros((mb * p, nb * p))
    padded[:m, :n] = dense
    blocks = padded.reshape(mb, p, nb, p).transpose(0, 2, 1, 3)  # (mb, nb, p, p)
    c = np.arange(p)
    energies = np.empty((mb, nb, p))
    for s in range(p):
        cols = (c + s) % p
        energies[:, :, s] = (blocks[:, :, c, cols] ** 2).sum(axis=-1)
    return energies


def best_permutation_parameters(dense: np.ndarray, p: int) -> np.ndarray:
    """Per-block shift maximizing captured energy (global L2-optimal ``k_l``)."""
    return np.argmax(diagonal_energies(dense, p), axis=-1).astype(np.int64)


def approximate_pd(
    dense: np.ndarray,
    p: int,
    scheme: str = "natural",
    seed: int | None = None,
) -> BlockPermutedDiagonalMatrix:
    """Project a dense matrix onto a block-PD support.

    Args:
        dense: matrix to approximate.
        p: block size (= the resulting compression ratio).
        scheme: ``"natural"`` or ``"random"`` (paper's two options for
            ``k_l``), or ``"best"`` for the jointly L2-optimal shifts.
        seed: RNG seed for ``scheme == "random"``.

    Returns:
        The projected :class:`BlockPermutedDiagonalMatrix`.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if scheme == "best":
        ks = best_permutation_parameters(dense, p)
        return BlockPermutedDiagonalMatrix.from_dense(dense, p, ks=ks)
    spec = PermutationSpec(scheme=scheme, seed=seed)
    return BlockPermutedDiagonalMatrix.from_dense(dense, p, spec=spec)


def approximate_pd_tensor(
    dense: np.ndarray,
    p: int,
    scheme: str = "natural",
    seed: int | None = None,
) -> BlockPermDiagTensor4D:
    """Project a dense 4-D CONV tensor onto a channel-plane PD support.

    For ``scheme == "best"`` each block's shift maximizes the total energy
    of the kernels it keeps (L2-optimal for the tensor case).
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 4:
        raise ValueError(f"expected 4-D tensor, got shape {dense.shape}")
    if scheme == "best":
        # Reduce each kernel to its energy, then reuse the matrix machinery.
        kernel_energy = np.sqrt((dense**2).sum(axis=(2, 3)))
        ks = best_permutation_parameters(kernel_energy, p)
        return BlockPermDiagTensor4D.from_dense(dense, p, ks=ks)
    spec = PermutationSpec(scheme=scheme, seed=seed)
    return BlockPermDiagTensor4D.from_dense(dense, p, spec=spec)
