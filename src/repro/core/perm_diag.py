"""A single ``p x p`` permuted diagonal matrix."""

from __future__ import annotations

import numpy as np

from repro.core.permutation import nonzero_column, nonzero_row

__all__ = ["PermutedDiagonalMatrix"]


class PermutedDiagonalMatrix:
    """A ``p x p`` matrix whose non-zeros lie on a cyclically shifted diagonal.

    Row ``c`` holds its single non-zero ``values[c]`` at column
    ``(c + k) mod p``.  ``k = 0`` gives an ordinary diagonal matrix.

    This is the atomic building block of the paper's representation; an
    ``m x n`` weight matrix is a grid of these
    (:class:`repro.core.BlockPermutedDiagonalMatrix`).

    Args:
        values: length-``p`` vector of the non-zero entries (row order).
        k: permutation parameter; reduced modulo ``p``.
    """

    def __init__(self, values: np.ndarray, k: int) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        if values.size == 0:
            raise ValueError("values must be non-empty")
        self.values = values
        self.p = values.shape[0]
        self.k = int(k) % self.p

    @property
    def shape(self) -> tuple[int, int]:
        return (self.p, self.p)

    @property
    def nnz(self) -> int:
        """Number of stored entries (always ``p``)."""
        return self.p

    @classmethod
    def from_dense(cls, dense: np.ndarray, k: int) -> "PermutedDiagonalMatrix":
        """Extract the ``k``-shifted diagonal of a square dense matrix.

        Entries off the permuted diagonal are discarded -- this is the
        optimal L2 projection onto the fixed-``k`` PD support (Sec. III-F).
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {dense.shape}")
        p = dense.shape[0]
        rows = np.arange(p)
        cols = nonzero_column(rows, k, p)
        return cls(dense[rows, cols], k)

    @classmethod
    def identity_like(cls, p: int, k: int = 0) -> "PermutedDiagonalMatrix":
        """The permutation matrix itself: ones on the ``k``-shifted diagonal."""
        return cls(np.ones(p), k)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ``p x p`` array."""
        dense = np.zeros((self.p, self.p))
        rows = np.arange(self.p)
        dense[rows, nonzero_column(rows, self.k, self.p)] = self.values
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``W @ x`` in ``O(p)``: ``y[c] = values[c] * x[(c+k) % p]``."""
        x = np.asarray(x)
        if x.shape != (self.p,):
            raise ValueError(f"expected x of shape ({self.p},), got {x.shape}")
        cols = nonzero_column(np.arange(self.p), self.k, self.p)
        return self.values * x[cols]

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Compute ``W.T @ y`` in ``O(p)`` (used by backpropagation)."""
        y = np.asarray(y)
        if y.shape != (self.p,):
            raise ValueError(f"expected y of shape ({self.p},), got {y.shape}")
        cols = np.arange(self.p)
        rows = nonzero_row(cols, self.k, self.p)
        return self.values[rows] * y[rows]

    def transpose(self) -> "PermutedDiagonalMatrix":
        """The transpose is PD as well, with parameter ``(p - k) mod p``."""
        k_t = (-self.k) % self.p
        cols = np.arange(self.p)
        rows = nonzero_row(cols, self.k, self.p)
        return PermutedDiagonalMatrix(self.values[rows], k_t)

    def inverse(self) -> "PermutedDiagonalMatrix":
        """Exact inverse, which is again permuted diagonal.

        Writing ``W = D P_k`` (diagonal times cyclic shift),
        ``W^-1 = P_{-k} D^-1``: parameter ``(p - k) mod p`` and values
        ``1 / values[(i - k) mod p]`` in row ``i``.

        Raises:
            ZeroDivisionError: if any stored value is zero (singular).
        """
        if np.any(self.values == 0):
            raise ZeroDivisionError("singular permuted diagonal matrix")
        rows = (np.arange(self.p) - self.k) % self.p
        return PermutedDiagonalMatrix(1.0 / self.values[rows], -self.k)

    def __matmul__(self, other):
        """PD @ PD composes: parameters add modulo ``p``."""
        if isinstance(other, PermutedDiagonalMatrix):
            if other.p != self.p:
                raise ValueError(
                    f"size mismatch: {self.p} vs {other.p}"
                )
            # Row c of the product: values[c] * other row (c+k)%p, whose
            # non-zero is at column (c + k + other.k) % p.
            mid = nonzero_column(np.arange(self.p), self.k, self.p)
            return PermutedDiagonalMatrix(
                self.values * other.values[mid], self.k + other.k
            )
        if isinstance(other, np.ndarray) and other.ndim == 1:
            return self.matvec(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"PermutedDiagonalMatrix(p={self.p}, k={self.k})"
