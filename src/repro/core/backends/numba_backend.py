"""Optional numba JIT backend, auto-detected at import.

When numba is installed, the products run as parallel (``prange`` over
block rows/columns) scalar loops compiled to native code: no ``nnz x B``
gather temporaries are materialized at all, which is the win over the
numpy backends for large layers.  When numba is missing the backend
registers as unavailable and selection falls through to ``csr``/``gather``
-- nothing in this module hard-requires the dependency.

The kernels index padded buffers (``mb*p`` / ``nb*p`` wide) so the modulo
column arithmetic never goes out of bounds; the python wrappers add the
zero padding only for non-multiple-of-``p`` shapes, mirroring the aligned
fast paths of the gather backend.

Every buffer the wrappers allocate carries an explicit dtype derived from
the operands (the JIT specializes per dtype): a dtype-less ``np.zeros``
here used to silently upcast float32 inputs to float64, materializing a
double-width temporary even on the "aligned no-copy" path.  The
``grad_data`` accumulator is float64 by construction (``acc = 0.0``)
regardless of operand dtype, narrowing only on the final store.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

__all__ = ["NumbaBackend"]


if _numba is not None:  # pragma: no cover - compiled path needs numba

    @_numba.njit(parallel=True, fastmath=True, cache=True)
    def _matmat_kernel(data, cols, x_pad, out_pad):
        mb, nb, p = data.shape
        batch = x_pad.shape[0]
        for bi in _numba.prange(mb):
            base = bi * p
            for b in range(batch):
                for bj in range(nb):
                    for c in range(p):
                        out_pad[b, base + c] += (
                            data[bi, bj, c] * x_pad[b, cols[bi, bj, c]]
                        )

    @_numba.njit(parallel=True, fastmath=True, cache=True)
    def _rmatmat_kernel(data_flat, t_src, t_cols, y_pad, out_pad):
        nb, mb, p = t_src.shape
        batch = y_pad.shape[0]
        for bj in _numba.prange(nb):
            base = bj * p
            for b in range(batch):
                for bi in range(mb):
                    for c in range(p):
                        out_pad[b, base + c] += (
                            data_flat[t_src[bj, bi, c]]
                            * y_pad[b, t_cols[bj, bi, c]]
                        )

    @_numba.njit(parallel=True, fastmath=True, cache=True)
    def _grad_kernel(cols, x_pad, dy_pad, grad):
        mb, nb, p = grad.shape
        batch = x_pad.shape[0]
        for bi in _numba.prange(mb):
            base = bi * p
            for bj in range(nb):
                for c in range(p):
                    acc = 0.0
                    for b in range(batch):
                        acc += dy_pad[b, base + c] * x_pad[b, cols[bi, bj, c]]
                    grad[bi, bj, c] = acc


def _padded(arr: np.ndarray, width: int) -> np.ndarray:
    """``arr`` widened with zero columns to ``width`` (no copy if aligned).

    The pad inherits ``arr``'s dtype: a float32 operand must never
    materialize a float64 temporary here (the silent-upcast bug RPR009
    now guards against).
    """
    if arr.shape[1] == width:
        return np.ascontiguousarray(arr)
    pad = np.zeros((arr.shape[0], width), dtype=arr.dtype)
    pad[:, : arr.shape[1]] = arr
    return pad


class NumbaBackend(KernelBackend):
    """JIT-compiled scalar loops over the cached index plan."""

    name = "numba"

    @classmethod
    def is_available(cls) -> bool:
        return _numba is not None

    def matmat(self, matrix, x: np.ndarray) -> np.ndarray:
        plan = matrix._get_plan()
        data = matrix._kernel_data()
        out = np.zeros(
            (x.shape[0], matrix.mb * matrix.p),
            dtype=np.result_type(data, x),
        )
        _matmat_kernel(
            data, plan.cols, _padded(x, matrix.nb * matrix.p), out
        )
        return out[:, : matrix.shape[0]]

    def rmatmat(self, matrix, y: np.ndarray) -> np.ndarray:
        plan = matrix._get_plan()
        t_src, t_cols = plan.transpose_arrays()
        data_flat = matrix._kernel_data().ravel()
        out = np.zeros(
            (y.shape[0], matrix.nb * matrix.p),
            dtype=np.result_type(data_flat, y),
        )
        _rmatmat_kernel(
            data_flat, t_src, t_cols,
            _padded(y, matrix.mb * matrix.p), out,
        )
        return out[:, : matrix.shape[1]]

    def grad_data(self, matrix, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        plan = matrix._get_plan()
        # Gradient w.r.t. the logical weights, in the operands' compute
        # dtype -- never the storage dtype (int16 codes cannot hold one).
        grad = np.empty(matrix.data.shape, dtype=np.result_type(x, dy))
        _grad_kernel(
            plan.cols,
            _padded(x, matrix.nb * matrix.p),
            _padded(dy, matrix.mb * matrix.p),
            grad,
        )
        if plan.full_support:
            return grad
        return grad * plan.support
