"""scipy CSR backend: int32-indexed sparse products off the cached skeleton.

The CSR skeleton (``indptr``/``indices``) comes from the index plan and is
stored in int32 whenever the matrix dimensions permit -- scipy's sparsetools
native index type -- which halves the index traffic of every spmm against
the int64 skeletons of earlier revisions.  Only the ``nnz`` value buffer is
refreshed per call (a single plan-ordered gather, dequantizing int16 codes
on the fly), so in-place weight updates are always reflected without
rebuilding structure.  The value buffer lives in the matrix's compute
dtype: float32 storage runs scipy's float32 spmm end to end (half the
memory traffic), everything else the float64 reference arithmetic.

The weight gradient reuses the same column skeleton through the shared
batched contraction (:func:`~repro.core.backends.gather.batched_grad_data`):
sparse storage buys nothing there because the output is exactly the dense
``(mb, nb, p)`` value array.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.backends.gather import batched_grad_data

__all__ = ["CsrBackend"]


class CsrBackend(KernelBackend):
    """Products through ``scipy.sparse`` CSR views of ``W`` and ``W.T``."""

    name = "csr"

    @classmethod
    def is_available(cls) -> bool:
        # Consult the module attribute (not a fresh import) so tests that
        # monkeypatch ``block_perm_diag._scipy_sparse`` see the backend
        # become unavailable.
        from repro.core import block_perm_diag

        return block_perm_diag._scipy_sparse is not None

    def matmat(self, matrix, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(matrix._csr(False).dot(x.T).T)

    def rmatmat(self, matrix, y: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(matrix._csr(True).dot(y.T).T)

    def matvec(self, matrix, x: np.ndarray) -> np.ndarray:
        return matrix._csr(False) @ x

    def rmatvec(self, matrix, y: np.ndarray) -> np.ndarray:
        return matrix._csr(True) @ y

    def grad_data(self, matrix, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        return batched_grad_data(matrix, x, dy)
