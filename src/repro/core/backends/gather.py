"""Pure-numpy gather/einsum backend (always available).

This is the scipy-free execution path: products run as fancy-indexing
gathers against the cached index plan followed by an einsum contraction.

Small problems use a single batch-major gather.  Once the gathered
temporary would exceed :data:`_CHUNK_TARGET_ELEMENTS` (or the
``repro.core.block_perm_diag._GATHER_ELEMENT_LIMIT`` cap), products switch
to a **cache-blocked transposed orientation**: operands are transposed
once so every gather reads contiguous ``(batch,)``-rows, and block rows
are processed in chunks sized to keep each gathered slab resident in
cache.  At (m=n=4096, p=64, batch=128) this runs the whole backward
roughly 4x faster than the one-shot gather it replaces.

The batched weight gradient implemented here is shared by the other CPU
backends (see :class:`~repro.core.backends.csr.CsrBackend`): it contracts
the whole batch against the plan's column skeleton -- the same ``(row,
col)`` set the CSR matrices are built from -- with the ``dy`` side
expressed as a broadcast over block columns instead of a second
``nnz x B`` gather.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import KernelBackend

__all__ = ["GatherBackend", "batched_grad_data"]

# Below this many gathered float64 elements a product runs as one
# batch-major gather; above it, the cache-blocked transposed path wins.
_ONESHOT_LIMIT_ELEMENTS = 1 << 20

# Target size (in gathered float64 elements, ~0.5 MB) of one slab of the
# cache-blocked path; chosen so slab + einsum output stay cache resident
# (measured fastest across 512..4096-wide layers, see docs/BENCHMARKS.md).
_CHUNK_TARGET_ELEMENTS = 1 << 16


def _element_limit() -> int:
    # Read dynamically so tests can monkeypatch the module constant.
    from repro.core import block_perm_diag

    return block_perm_diag._GATHER_ELEMENT_LIMIT


def _oneshot_limit() -> int:
    return min(_ONESHOT_LIMIT_ELEMENTS, _element_limit())


def _chunk_rows(block_rows: int, per_row: int) -> int:
    """Block rows per chunk so one gathered slab stays cache resident."""
    cap = min(_CHUNK_TARGET_ELEMENTS, _element_limit())
    return max(1, min(block_rows, cap // max(per_row, 1)))


def _pad_columns_t(arr_t: np.ndarray, width: int) -> np.ndarray:
    """Transposed operand widened with zero rows (no copy when aligned).

    Allocated at the operand's own dtype: a dtype-less ``np.zeros`` here
    would silently upcast every float32 product to float64 (RPR009).
    """
    if arr_t.shape[0] == width:
        return arr_t
    pad = np.zeros((width, arr_t.shape[1]), dtype=arr_t.dtype)
    pad[: arr_t.shape[0]] = arr_t
    return pad


def batched_grad_data(matrix, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Weight gradient for a whole batch off the shared column skeleton.

    ``dq[bi, bj, c] = sum_b dy[b, bi*p+c] * x[b, col(bi, bj, c)]`` (Eqn.
    (2)).  Transposed, cache-blocked gathers of ``x`` against
    ``plan.cols`` serve the entire batch; the ``dy`` factor never needs
    gathering because in block order its rows are exactly ``dy.T``
    reshaped to ``(mb, p, B)`` and broadcast over ``nb`` -- that broadcast
    plus the chunked gather is what makes this batched formulation several
    times cheaper than per-sample (or one-shot ``nnz x B``) gathers.
    """
    plan = matrix._get_plan()
    batch = x.shape[0]
    # Transposed orientation: gathers read contiguous (batch,)-rows of
    # ``x.T`` instead of strided columns of ``x``.
    x_t = _pad_columns_t(np.ascontiguousarray(x.T), matrix.nb * matrix.p)
    dy_t = _pad_columns_t(np.ascontiguousarray(dy.T), matrix.mb * matrix.p)
    dy_blocks = dy_t.reshape(matrix.mb, matrix.p, batch)
    if batch * plan.cols.size <= _oneshot_limit():
        gathered = x_t[plan.flat_cols].reshape(
            matrix.mb, matrix.nb, matrix.p, batch
        )
        grad = np.einsum("icb,ijcb->ijc", dy_blocks, gathered)
    else:
        rows = _chunk_rows(matrix.mb, matrix.nb * matrix.p * batch)
        # The gradient is w.r.t. the *logical* weights, in the compute
        # dtype of the operands -- never the storage dtype (which may be
        # int16 codes that could not hold a gradient at all).
        grad = np.empty(
            matrix.data.shape, dtype=np.result_type(x_t, dy_t)
        )
        for start in range(0, matrix.mb, rows):
            stop = min(start + rows, matrix.mb)
            gathered = x_t[plan.cols[start:stop].reshape(-1)].reshape(
                stop - start, matrix.nb, matrix.p, batch
            )
            grad[start:stop] = np.einsum(
                "icb,ijcb->ijc", dy_blocks[start:stop], gathered
            )
    if plan.full_support:
        return grad
    return grad * plan.support


class GatherBackend(KernelBackend):
    """Fancy-indexing + einsum products with no dependency beyond numpy."""

    name = "gather"

    def matmat(self, matrix, x: np.ndarray) -> np.ndarray:
        plan = matrix._get_plan()
        batch = x.shape[0]
        data = matrix._kernel_data()
        if batch * plan.cols.size <= _oneshot_limit():
            # Small problem: one batch-major gather, no transposes.
            if plan.aligned_n:
                x_pad = x  # aligned fast path: no zero-padded copy
            else:
                x_pad = np.zeros((batch, matrix.nb * matrix.p), dtype=x.dtype)
                x_pad[:, : x.shape[1]] = x
            gathered = x_pad[:, plan.flat_cols].reshape(
                batch, matrix.mb, matrix.nb, matrix.p
            )
            y_blocks = np.einsum("ijc,bijc->bic", data, gathered)
            return y_blocks.reshape(batch, matrix.mb * matrix.p)[
                :, : matrix.shape[0]
            ]
        x_t = _pad_columns_t(np.ascontiguousarray(x.T), matrix.nb * matrix.p)
        rows = _chunk_rows(matrix.mb, matrix.nb * matrix.p * batch)
        y_t = np.empty(
            (matrix.mb, matrix.p, batch), dtype=np.result_type(data, x_t)
        )
        for start in range(0, matrix.mb, rows):
            stop = min(start + rows, matrix.mb)
            gathered = x_t[plan.cols[start:stop].reshape(-1)].reshape(
                stop - start, matrix.nb, matrix.p, batch
            )
            y_t[start:stop] = np.einsum(
                "ijc,ijcb->icb", data[start:stop], gathered
            )
        out = y_t.reshape(matrix.mb * matrix.p, batch)[: matrix.shape[0]]
        return np.ascontiguousarray(out.T)

    def rmatmat(self, matrix, y: np.ndarray) -> np.ndarray:
        plan = matrix._get_plan()
        batch = y.shape[0]
        t_src, t_cols = plan.transpose_arrays()
        data_flat = matrix._kernel_data().ravel()
        if batch * t_cols.size <= _oneshot_limit():
            if plan.aligned_m:
                y_pad = y  # aligned fast path: no zero-padded copy
            else:
                y_pad = np.zeros((batch, matrix.mb * matrix.p), dtype=y.dtype)
                y_pad[:, : y.shape[1]] = y
            data_t = data_flat[t_src]
            gathered = y_pad[:, t_cols.reshape(-1)].reshape(
                batch, matrix.nb, matrix.mb, matrix.p
            )
            x_blocks = np.einsum("jic,bjic->bjc", data_t, gathered)
            return x_blocks.reshape(batch, matrix.nb * matrix.p)[
                :, : matrix.shape[1]
            ]
        y_t = _pad_columns_t(np.ascontiguousarray(y.T), matrix.mb * matrix.p)
        rows = _chunk_rows(matrix.nb, matrix.mb * matrix.p * batch)
        x_t = np.empty(
            (matrix.nb, matrix.p, batch),
            dtype=np.result_type(data_flat, y_t),
        )
        for start in range(0, matrix.nb, rows):
            stop = min(start + rows, matrix.nb)
            gathered = y_t[t_cols[start:stop].reshape(-1)].reshape(
                stop - start, matrix.mb, matrix.p, batch
            )
            x_t[start:stop] = np.einsum(
                "jic,jicb->jcb", data_flat[t_src[start:stop]], gathered
            )
        out = x_t.reshape(matrix.nb * matrix.p, batch)[: matrix.shape[1]]
        return np.ascontiguousarray(out.T)

    def grad_data(self, matrix, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        return batched_grad_data(matrix, x, dy)
