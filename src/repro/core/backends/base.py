"""Backend interface for the block-PD kernel hot paths.

A :class:`KernelBackend` implements the three products every training step
pays -- ``matmat`` (forward), ``rmatmat`` (input gradient) and ``grad_data``
(weight gradient) -- plus their single-vector variants, against one
:class:`~repro.core.block_perm_diag.BlockPermutedDiagonalMatrix`.

Backends are **stateless singletons**: all per-matrix state (the cached
index plan, the refreshed CSR value buffers) lives on the matrix itself,
so one backend instance serves every matrix in the process.  Input
validation also stays on the matrix -- backends receive arrays of the
correct shape, pre-cast to the matrix's *compute dtype*
(:attr:`~repro.core.block_perm_diag.BlockPermutedDiagonalMatrix.compute_dtype`),
and may index them without re-checking.

Dtype contract: backends read weight values through
``matrix._kernel_data()`` (never ``matrix.data``, which may hold int16
fixed-point codes) and allocate every temporary/output buffer with an
explicit dtype derived from the operands -- dtype-less ``np.zeros`` /
``np.empty`` silently upcast float32 products to float64 and are banned
in ``core/backends/`` by repro-lint rule RPR009.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BackendUnavailableError", "KernelBackend", "UnknownBackendError"]


class UnknownBackendError(ValueError):
    """A backend name that is not registered (check ``REPRO_BACKEND``)."""


class BackendUnavailableError(RuntimeError):
    """A registered backend whose runtime dependency is missing."""


class KernelBackend:
    """One implementation of the block-PD products.

    Subclasses set :attr:`name`, may override :meth:`is_available`, and
    implement the batched products.  The single-vector products default to
    the batched ones with a singleton batch; override when a backend has a
    cheaper direct path (e.g. CSR mat-vec).
    """

    #: Registry key; also the value accepted by ``backend=`` arguments,
    #: :func:`~repro.core.backends.set_default_backend` and ``REPRO_BACKEND``.
    name: str = "?"

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend's runtime dependencies are importable."""
        return True

    # -- batched products (must be implemented) -------------------------

    def matmat(self, matrix, x: np.ndarray) -> np.ndarray:
        """Forward ``Y[b] = W @ X[b]`` for ``X`` of shape ``(B, n)``."""
        raise NotImplementedError

    def rmatmat(self, matrix, y: np.ndarray) -> np.ndarray:
        """Transposed ``X[b] = W.T @ Y[b]`` for ``Y`` of shape ``(B, m)``."""
        raise NotImplementedError

    def grad_data(self, matrix, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Weight gradient ``dQ`` of shape ``(mb, nb, p)`` for a batch."""
        raise NotImplementedError

    # -- single-vector products (overridable) ---------------------------

    def matvec(self, matrix, x: np.ndarray) -> np.ndarray:
        return self.matmat(matrix, x[None, :])[0]

    def rmatvec(self, matrix, y: np.ndarray) -> np.ndarray:
        return self.rmatmat(matrix, y[None, :])[0]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
