"""Pluggable execution backends for the block-PD kernel.

Every matmul path in the repo dispatches through this registry instead of
hard-coding scipy-vs-numpy branching:

- ``gather`` -- pure numpy fancy-indexing + einsum; always available.
- ``csr``    -- scipy CSR spmm with int32-indexed skeletons; the default
  whenever scipy imports.
- ``numba``  -- JIT-compiled parallel loops; auto-detected, optional.

Selection precedence, per product call:

1. the matrix's own ``backend=`` (constructor argument or
   :meth:`~repro.core.block_perm_diag.BlockPermutedDiagonalMatrix.set_backend`);
2. the process-wide default set by :func:`set_default_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. ``auto``: ``csr`` when scipy is importable, else ``gather``.

Backend objects are stateless singletons (see
:class:`~repro.core.backends.base.KernelBackend`); per-matrix caches stay
on the matrix, so backends can be switched at any time without invalidating
plans.
"""

from __future__ import annotations

import os

from repro.core.backends.base import (
    BackendUnavailableError,
    KernelBackend,
    UnknownBackendError,
)
from repro.core.backends.csr import CsrBackend
from repro.core.backends.gather import GatherBackend
from repro.core.backends.numba_backend import NumbaBackend

__all__ = [
    "AUTO",
    "BackendUnavailableError",
    "KernelBackend",
    "UnknownBackendError",
    "available_backends",
    "backend_names",
    "default_backend",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "validate_backend_name",
]

#: Sentinel name meaning "pick the best available backend".
AUTO = "auto"

_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}

# Process-wide default; ``None`` defers to ``REPRO_BACKEND`` / AUTO so the
# environment variable is re-read until someone pins a default explicitly.
_default: str | None = None


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Add a :class:`KernelBackend` subclass to the registry (by its name)."""
    if not cls.name or cls.name == AUTO:
        raise ValueError(f"invalid backend name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    _INSTANCES.pop(cls.name, None)
    return cls


def backend_names() -> tuple[str, ...]:
    """All registered backend names, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Registered backends whose dependencies import on this machine."""
    return tuple(n for n, cls in _REGISTRY.items() if cls.is_available())


def validate_backend_name(name: str) -> str:
    """Normalize ``name`` and reject unknown backends (``auto`` allowed)."""
    normalized = str(name).strip().lower()
    if normalized != AUTO and normalized not in _REGISTRY:
        known = ", ".join((AUTO,) + backend_names())
        raise UnknownBackendError(
            f"unknown kernel backend {name!r}; choose from: {known}"
        )
    return normalized


def get_backend(name: str) -> KernelBackend:
    """The singleton backend registered under ``name``.

    Raises:
        UnknownBackendError: ``name`` is not registered.
        BackendUnavailableError: registered, but its dependency is missing
            (checked on every call, so monkeypatched/changed environments
            take effect immediately).
    """
    normalized = validate_backend_name(name)
    if normalized == AUTO:
        raise UnknownBackendError("'auto' must be resolved by the caller")
    cls = _REGISTRY[normalized]
    if not cls.is_available():
        raise BackendUnavailableError(
            f"kernel backend {normalized!r} is not available on this system "
            f"(available: {', '.join(available_backends()) or 'none'})"
        )
    instance = _INSTANCES.get(normalized)
    if instance is None:
        instance = _INSTANCES[normalized] = cls()
    return instance


def set_default_backend(name: str | None) -> None:
    """Set the process-wide default backend.

    ``None`` restores the startup behaviour (``REPRO_BACKEND`` env var,
    else ``auto``).  An explicit non-``auto`` name is validated and checked
    for availability immediately so misconfiguration fails loudly here, not
    inside some later product call.
    """
    global _default
    if name is None:
        _default = None
        return
    normalized = validate_backend_name(name)
    if normalized != AUTO:
        get_backend(normalized)  # availability check, raises if missing
    _default = normalized


def default_backend() -> str:
    """The current default backend name (possibly ``"auto"``)."""
    if _default is not None:
        return _default
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return env or AUTO


register_backend(GatherBackend)
register_backend(CsrBackend)
register_backend(NumbaBackend)
