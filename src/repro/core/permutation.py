"""Permutation-parameter selection and the index arithmetic of Eqn. (1).

Every ``p x p`` permuted diagonal block is fully described by one integer
``k`` (its *permutation parameter*): the block's non-zero in row ``c`` sits at
column ``(c + k) mod p``.  For an ``m x n`` block-permuted diagonal matrix the
blocks are indexed row-major as ``l = (i // p) * (n // p) + (j // p)``
(Eqn. (1)), each with its own ``k_l``.

The paper evaluates two ways of choosing ``k_l`` (Sec. III-D): *natural
indexing* (``k_l = l mod p``, the setting used for all reported tables) and
*random indexing*; both are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PermutationSpec",
    "block_index",
    "natural_permutation",
    "nonzero_column",
    "nonzero_row",
    "random_permutation",
]


def natural_permutation(num_blocks: int, p: int) -> np.ndarray:
    """Return natural-indexing permutation parameters ``k_l = l mod p``.

    This mirrors the paper's example: "for a 4-by-16 block-permuted diagonal
    weight matrix with p = 4, k0 ~ k3 is set as 0 ~ 3".

    Args:
        num_blocks: total number of ``p x p`` blocks (``(m/p) * (n/p)``).
        p: block size; parameters are reduced modulo ``p``.

    Returns:
        Integer array of shape ``(num_blocks,)`` with values in ``[0, p)``.
    """
    if p <= 0:
        raise ValueError(f"block size p must be positive, got {p}")
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be non-negative, got {num_blocks}")
    return np.arange(num_blocks, dtype=np.int64) % p


def random_permutation(
    num_blocks: int, p: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Return uniformly random permutation parameters in ``[0, p)``.

    Args:
        num_blocks: total number of blocks.
        p: block size.
        rng: :class:`numpy.random.Generator`, an integer seed, or ``None``
            for a fresh default generator.
    """
    if p <= 0:
        raise ValueError(f"block size p must be positive, got {p}")
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be non-negative, got {num_blocks}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return rng.integers(0, p, size=num_blocks, dtype=np.int64)


def block_index(i: int, j: int, p: int, n: int) -> int:
    """Row-major index ``l`` of the block containing entry ``(i, j)``.

    Implements ``l = (i // p) * (n // p) + (j // p)`` from Eqn. (1).

    Args:
        i: row index in the full matrix.
        j: column index in the full matrix.
        p: block size.
        n: number of columns of the full matrix (must be a multiple of ``p``).
    """
    if n % p != 0:
        raise ValueError(f"n={n} must be a multiple of p={p} (pad first)")
    return (i // p) * (n // p) + (j // p)


def nonzero_column(c: int | np.ndarray, k: int | np.ndarray, p: int):
    """Column (within a block) of the non-zero entry in row ``c``.

    From Eqn. (1): the entry ``(c, d)`` is non-zero iff
    ``(c + k) mod p == d``.
    """
    return (c + k) % p


def nonzero_row(d: int | np.ndarray, k: int | np.ndarray, p: int):
    """Row (within a block) of the non-zero entry in column ``d``.

    Inverse of :func:`nonzero_column`: ``c = (d + p - k) mod p``, exactly the
    index calculation the paper's accumulation selector performs in hardware
    (Fig. 9: "modulo operation between the sum of permutation value and
    column index and the size p").
    """
    return (d + p - np.asarray(k) % p) % p


@dataclass(frozen=True)
class PermutationSpec:
    """How to pick per-block permutation parameters for a layer.

    Attributes:
        scheme: ``"natural"`` (paper default for all tables) or ``"random"``.
        seed: seed used when ``scheme == "random"``; ignored otherwise.
    """

    scheme: str = "natural"
    seed: int | None = None

    _SCHEMES = ("natural", "random")

    def __post_init__(self) -> None:
        if self.scheme not in self._SCHEMES:
            raise ValueError(
                f"unknown permutation scheme {self.scheme!r}; "
                f"expected one of {self._SCHEMES}"
            )

    def generate(self, num_blocks: int, p: int) -> np.ndarray:
        """Materialize the ``k_l`` array for ``num_blocks`` blocks of size ``p``."""
        if self.scheme == "natural":
            return natural_permutation(num_blocks, p)
        return random_permutation(num_blocks, p, rng=self.seed)
