"""Core permuted-diagonal linear algebra (the paper's primary contribution).

A *permuted diagonal* (PD) matrix is a ``p x p`` matrix whose only non-zero
entries lie on a cyclically shifted diagonal: row ``c`` holds its single
non-zero at column ``(c + k) mod p`` where ``k`` is the block's *permutation
parameter*.  A *block-permuted diagonal* matrix tiles an ``m x n`` weight
matrix with such blocks (Eqn. (1) of the paper), storing only ``m*n/p``
values and **no indices** -- positions are recomputed with a modulo, which is
what makes the representation hardware friendly.

Public API
----------
- :class:`PermutedDiagonalMatrix` -- a single ``p x p`` PD block.
- :class:`BlockPermutedDiagonalMatrix` -- the full ``m x n`` structured matrix.
- :class:`BlockPermDiagTensor4D` -- PD structure over the channel plane of a
  4-D convolution weight tensor (Fig. 2).
- :func:`natural_permutation`, :func:`random_permutation` -- ``k_l`` selection.
- :func:`approximate_pd` / :func:`approximate_pd_tensor` -- optimal
  L2 projection of a dense matrix/tensor onto the PD support (Sec. III-F).
- :func:`set_default_backend` / :func:`available_backends` -- process-wide
  kernel-backend selection (see :mod:`repro.core.backends`); individual
  matrices can pin a backend via their ``backend=`` argument.
- :func:`set_default_value_dtype` / :func:`default_value_dtype` --
  process-wide value-storage selection (float64 / float32 / int16
  fixed-point; see :mod:`repro.core.value_types`); individual matrices
  take ``value_dtype=`` / ``fixed_point=`` arguments and convert via
  :meth:`BlockPermutedDiagonalMatrix.with_value_dtype`.
"""

from repro.core.backends import (
    BackendUnavailableError,
    UnknownBackendError,
    available_backends,
    default_backend,
    get_backend,
    set_default_backend,
)
from repro.core.value_types import (
    VALUE_DTYPES,
    UnknownValueDtypeError,
    default_value_dtype,
    set_default_value_dtype,
    validate_value_dtype,
)
from repro.core.permutation import (
    PermutationSpec,
    block_index,
    natural_permutation,
    nonzero_column,
    nonzero_row,
    random_permutation,
)
from repro.core.perm_diag import PermutedDiagonalMatrix
from repro.core.block_perm_diag import BlockPermutedDiagonalMatrix, row_shard_bounds
from repro.core.conv_tensor import BlockPermDiagTensor4D
from repro.core.approximation import (
    approximate_pd,
    approximate_pd_tensor,
    best_permutation_parameters,
    diagonal_energies,
)
from repro.core.storage import (
    StorageReport,
    dense_storage_bits,
    pd_storage_bits,
    save_bpd,
    load_bpd,
    unstructured_sparse_storage_bits,
)

__all__ = [
    "BackendUnavailableError",
    "PermutationSpec",
    "PermutedDiagonalMatrix",
    "BlockPermutedDiagonalMatrix",
    "BlockPermDiagTensor4D",
    "StorageReport",
    "UnknownBackendError",
    "UnknownValueDtypeError",
    "VALUE_DTYPES",
    "approximate_pd",
    "approximate_pd_tensor",
    "available_backends",
    "best_permutation_parameters",
    "diagonal_energies",
    "block_index",
    "default_backend",
    "default_value_dtype",
    "dense_storage_bits",
    "get_backend",
    "load_bpd",
    "natural_permutation",
    "nonzero_column",
    "nonzero_row",
    "pd_storage_bits",
    "random_permutation",
    "row_shard_bounds",
    "save_bpd",
    "set_default_backend",
    "set_default_value_dtype",
    "unstructured_sparse_storage_bits",
    "validate_value_dtype",
]
