"""Block-permuted diagonal matrices: the paper's weight representation.

An ``m x n`` weight matrix is tiled with ``p x p`` permuted diagonal blocks
(Eqn. (1)).  Only the ``m*n/p`` diagonal values (the ``q`` vector) and one
small integer per block (``k_l``) are stored; non-zero *positions* are
recomputed arithmetically, which is the property the PermDNN hardware
exploits to eliminate index storage.

When ``m`` or ``n`` is not a multiple of ``p`` the matrix is zero-padded
(footnote 3 of the paper); padded positions are forced to zero and excluded
from storage accounting.

Index-plan cache
----------------
Because non-zero positions are arithmetically derivable, every index
artifact -- the global row/column of each stored slot, the support mask,
the forward gather columns, the transposed gather pair, and the CSR
skeletons used by the sparse products -- is a pure function of the
*structure* ``(ks, shape, p)`` and never of the values.  All of it is
computed once, lazily, in an :class:`_IndexPlan` cached on the matrix;
every product (:meth:`~BlockPermutedDiagonalMatrix.matmat`,
:meth:`~BlockPermutedDiagonalMatrix.rmatmat`,
:meth:`~BlockPermutedDiagonalMatrix.grad_data`, ...) reads the plan instead
of rebuilding indices, and the backward path is transpose-free: no
intermediate :meth:`~BlockPermutedDiagonalMatrix.transpose` object is
materialized per call.

Structure is immutable through attribute access (``ks`` is exposed
read-only and ``shape`` is a plain property).  The sanctioned mutation API
is :meth:`~BlockPermutedDiagonalMatrix.set_structure`, which re-validates,
re-masks the stored values, and invalidates the cached plan.  Matrices
sharing one structure (e.g. the per-offset channel matrices of a lowered
convolution) can share a single plan via
:meth:`~BlockPermutedDiagonalMatrix.like`.

Value storage
-------------
Orthogonally to the index structure, the stored values live in one of
three ``value_dtype`` modes (see :mod:`repro.core.value_types`):
``"float64"`` (default, the conformance reference), ``"float32"`` (half
the hot-path memory traffic; products run end to end in float32), and
``"int16"`` (fixed-point codes in a
:class:`~repro.nn.quantization.FixedPointFormat`).  Kernels read values
through :meth:`~BlockPermutedDiagonalMatrix._kernel_data`, which hands
them the storage array for the float modes and the codes dequantized to
float64 for ``int16`` -- the power-of-two scale makes dequantize-then-
accumulate bitwise equal to accumulate-then-scale, so backends carry no
scaling logic.  Accumulation policy: float64 and int16 products
accumulate in float64 (int16 is the software analogue of the paper's
16-bit weights feeding wide accumulators); float32 accumulates in
float32, which is where its speedup comes from.
:meth:`~BlockPermutedDiagonalMatrix.with_value_dtype` converts between
modes while sharing the cached index plan.

Aliasing contract
-----------------
Assigning ``data`` (including at construction) **aliases** the supplied
array -- no copy -- whenever it is already in the storage dtype with a
zeroed padding region, which is always true for shapes divisible by
``p``.  A masked copy is made only when padding actually zeroes
something (and a cast copy when the dtype differs).  Consumers rely on
the alias:
:class:`~repro.nn.layers.perm_diag_linear.PermDiagLinear` points its
trainable parameter at the same buffer, so in-place optimizer updates are
visible to the matrix with zero copies.  In-place writes to ``data`` are
fine for *values*; writing non-zeros into the padding region of an aliased
buffer is unsupported (products ignore those slots, but storage accounting
and ``to_q`` round-trips assume they stay zero).

Backend dispatch
----------------
The products themselves execute through a pluggable
:mod:`repro.core.backends` implementation: ``csr`` (scipy, int32-indexed
CSR skeletons -- the default when scipy imports), ``gather`` (pure numpy)
or ``numba`` (optional JIT).  Selection order per call: the matrix's own
``backend=`` argument / :meth:`~BlockPermutedDiagonalMatrix.set_backend`,
then :func:`repro.core.backends.set_default_backend`, then the
``REPRO_BACKEND`` environment variable, then auto-detection.

Plan serialization
------------------
A warmed :class:`_IndexPlan` round-trips through
:meth:`~BlockPermutedDiagonalMatrix.plan_bytes` /
:meth:`~BlockPermutedDiagonalMatrix.from_plan` (and
:meth:`~BlockPermutedDiagonalMatrix.adopt_plan`), so deployment surfaces
(``repro.hw.engine`` images, ``repro.nn.serialization`` checkpoints,
``repro.core.storage``) can persist the index arithmetic once and reload
matrices without recomputing any of it.
"""

from __future__ import annotations

import contextlib
import io

import numpy as np

try:  # scipy is an install requirement but stay importable without it
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _scipy_sparse = None

from repro.core import backends as _backends
from repro.core import value_types as _value_types
from repro.core.permutation import PermutationSpec

__all__ = ["BlockPermutedDiagonalMatrix", "row_shard_bounds"]

# Hard cap on gathered elements per slab in the gather backend; together
# with the (much smaller) cache-blocking target in
# :mod:`repro.core.backends.gather` it bounds temporary memory and forces
# the chunked transposed path for large products.
_GATHER_ELEMENT_LIMIT = 50_000_000

# Version tag of the _IndexPlan.to_bytes() wire format.  Version 2 added
# the optional value-dtype tag (``vd``/``fp`` keys); version-1 blobs are
# still accepted and read as untagged (float64-era) plans.
_PLAN_FORMAT_VERSION = 2
_PLAN_MIN_FORMAT_VERSION = 1

# Lazily-built plan members, as (serialization key, attribute) pairs; each
# is a tuple of arrays when built, None otherwise.
_PLAN_LAZY_FIELDS = (("t", "_t_arrays"), ("sc", "_support_coords"))


def _resolve_value_dtype(value_dtype, fixed_point):
    """Canonical ``(name, format)`` for a constructor's value-dtype args.

    ``None`` follows the process default
    (:func:`repro.core.value_types.default_value_dtype`).  ``int16``
    requires an explicit format here -- only
    :meth:`BlockPermutedDiagonalMatrix.with_value_dtype` derives one,
    because deriving needs the values.
    """
    if value_dtype is None:
        name = _value_types.default_value_dtype()
    else:
        name = _value_types.validate_value_dtype(value_dtype)
    if name == "int16":
        if fixed_point is None:
            raise ValueError(
                "int16 value storage needs an explicit FixedPointFormat "
                "(fixed_point=...); use with_value_dtype() to derive one "
                "from existing values"
            )
        if fixed_point.total_bits > 16:
            raise ValueError(
                f"int16 storage holds at most 16-bit codes, got "
                f"total_bits={fixed_point.total_bits}"
            )
    elif fixed_point is not None:
        raise ValueError(
            f"fixed_point only applies to int16 value storage, not {name!r}"
        )
    return name, fixed_point


@contextlib.contextmanager
def _ensure_writable(arr: np.ndarray):
    """Temporarily lift a read-only flag, restoring it on *every* exit.

    The sanitizer (:mod:`repro.debug.sanitizer`) freezes shared buffers by
    clearing ``flags.writeable``; sanctioned in-place mutation paths wrap
    their writes in this context so the freeze survives them -- including
    when the write itself raises.  Arrays that are genuinely immutable
    (views whose base this process may not write) make ``setflags`` raise
    ``ValueError``; callers catch that and fall back to a copy.
    """
    original = bool(arr.flags.writeable)
    if not original:
        arr.setflags(write=True)
    try:
        yield arr
    finally:
        if not original:
            arr.setflags(write=False)


def row_shard_bounds(num_block_rows: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced partition of ``num_block_rows`` into shards.

    Returns ``(start_block, stop_block)`` per shard; the first
    ``num_block_rows % num_shards`` shards carry one extra block row.  Row
    sharding happens at block-row granularity so every shard stays a valid
    block-PD matrix (used by :meth:`BlockPermutedDiagonalMatrix.row_shards`
    and the serving runtime in :mod:`repro.serve`).
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if num_shards > num_block_rows:
        raise ValueError(
            f"cannot cut {num_block_rows} block row(s) into {num_shards} "
            f"shards (each shard needs at least one block row)"
        )
    base, extra = divmod(num_block_rows, num_shards)
    bounds = []
    start = 0
    for idx in range(num_shards):
        stop = start + base + (1 if idx < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class _IndexPlan:
    """Cached index arithmetic for one ``(ks, shape, p)`` structure.

    Built lazily, once, and shared by every matrix that uses the structure
    (see :meth:`BlockPermutedDiagonalMatrix.like`).  The eager members are
    the forward-path arrays; the transpose pair, support coordinates and
    CSR skeletons are themselves built lazily on first use so forward-only
    consumers never pay for them.  All exposed arrays are read-only.

    Attributes:
        rows / cols: global ``(row, col)`` of every stored slot, ``(mb, nb, p)``.
        support: boolean ``(mb, nb, p)`` mask of slots inside the logical shape.
        flat_cols: ``cols`` flattened for one-shot gathers.
        nnz: number of in-bounds stored slots.
        aligned_m / aligned_n / full_support: padding-free flags per axis.
    """

    def __init__(self, ks: np.ndarray, shape: tuple[int, int], p: int) -> None:
        mb, nb = ks.shape
        m, n = shape
        self.p = p
        self.mb = mb
        self.nb = nb
        self.shape = shape
        self.ks = ks
        self.aligned_m = m == mb * p
        self.aligned_n = n == nb * p
        self.full_support = self.aligned_m and self.aligned_n
        c = np.arange(p, dtype=np.int64)
        rows = np.ascontiguousarray(
            np.broadcast_to(
                np.arange(mb, dtype=np.int64)[:, None, None] * p + c, (mb, nb, p)
            )
        )
        cols = (
            np.arange(nb, dtype=np.int64)[None, :, None] * p
            + (c[None, None, :] + ks[:, :, None]) % p
        )
        if self.full_support:
            support = np.ones((mb, nb, p), dtype=bool)
        else:
            support = (rows < m) & (cols < n)
        self.nnz = int(support.sum())
        for arr in (rows, cols, support):
            arr.setflags(write=False)
        self.rows, self.cols, self.support = rows, cols, support
        self.flat_cols = cols.reshape(-1)  # after the freeze: read-only view
        self._t_arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._support_coords: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._csr_structs: dict[bool, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        # Serialization metadata only (plans are value-free and shared
        # across dtype siblings): the value dtype of the matrix whose
        # plan_bytes() produced a deserialized plan, used by from_plan()
        # to restore a matrix at its persisted precision.
        self.value_dtype_hint: str | None = None
        self.fixed_point_hint: tuple[int, int] | None = None

    def support_coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(flat, rows, cols)`` of every in-bounds slot, each 1-D.

        ``flat`` indexes ``data.ravel()``; ``rows``/``cols`` are the global
        dense coordinates (always inside the logical shape).
        """
        if self._support_coords is None:
            if self.full_support:
                flat = np.arange(self.rows.size, dtype=np.int64)
                rows, cols = self.rows.reshape(-1), self.flat_cols
            else:
                flat = np.flatnonzero(self.support)
                rows = self.rows.reshape(-1)[flat]
                cols = self.flat_cols[flat]
            for arr in (flat, rows, cols):
                arr.setflags(write=False)
            self._support_coords = (flat, rows, cols)
        return self._support_coords

    def transpose_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(t_src, t_cols)``, each ``(nb, mb, p)``, for the transposed view.

        For transposed slot ``(bj, bi, d)`` -- row ``bj*p + d`` of ``W.T`` --
        ``t_src`` is the flat index into ``data`` of the value it carries and
        ``t_cols`` the original global row (= the ``W.T`` input column)
        feeding it.  This is what lets ``rmatmat`` run without materializing
        a transposed matrix object.
        """
        if self._t_arrays is None:
            p, mb, nb = self.p, self.mb, self.nb
            d = np.arange(p, dtype=np.int64)
            # Transposed row d of block (bi, bj) carries the original entry
            # whose column offset was d, i.e. original row (d - k) mod p.
            src_c = (d[None, None, :] - self.ks[:, :, None]) % p  # (mb, nb, p)
            bi = np.arange(mb, dtype=np.int64)[:, None, None]
            bj = np.arange(nb, dtype=np.int64)[None, :, None]
            t_src = np.ascontiguousarray(((bi * nb + bj) * p + src_c).transpose(1, 0, 2))
            t_cols = np.ascontiguousarray((bi * p + src_c).transpose(1, 0, 2))
            t_src.setflags(write=False)
            t_cols.setflags(write=False)
            self._t_arrays = (t_src, t_cols)
        return self._t_arrays

    def csr_struct(
        self, transposed: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR skeleton ``(indptr, indices, perm)`` of ``W`` (or ``W.T``).

        ``indptr``/``indices`` are int32 whenever the matrix dimensions
        permit (scipy's native index type -- spmm then moves half the index
        bytes of an int64 skeleton); ``perm`` stays at the platform index
        type because it is consumed by numpy fancy indexing, which would
        otherwise re-cast it on every value refresh.  ``perm`` gathers
        ``data.ravel()`` into CSR order, so refreshing a cached sparse
        matrix after an in-place weight update is a single ``nnz``-sized
        gather.
        """
        key = bool(transposed)
        if key not in self._csr_structs:
            flat, r, c = self.support_coords()
            if transposed:
                rows, cols, height = c, r, self.shape[1]
            else:
                rows, cols, height = r, c, self.shape[0]
            idx_dtype = (
                np.int32
                if max(self.shape[0], self.shape[1], self.nnz) < 2**31
                else np.int64
            )
            order = np.lexsort((cols, rows))
            indptr = np.zeros(height + 1, dtype=idx_dtype)
            indptr[1:] = np.cumsum(np.bincount(rows, minlength=height))
            indices = cols[order].astype(idx_dtype, copy=False)
            perm = flat[order]
            for arr in (indptr, indices, perm):
                arr.setflags(write=False)
            self._csr_structs[key] = (indptr, indices, perm)
        return self._csr_structs[key]

    # ------------------------------------------------------------------
    # Row sharding
    # ------------------------------------------------------------------

    def row_block_slice(self, start: int, stop: int) -> "_IndexPlan":
        """Derived plan covering block rows ``[start, stop)`` only.

        Everything is obtained by **slicing (and re-basing) this plan's
        cached arrays** -- no modulo index arithmetic runs, which is what
        lets the serving runtime shard a layer across engines without
        paying the structure computation per shard.  ``cols`` and
        ``support`` are shared views; ``rows`` and the transposed pair
        (when already built here) are re-based copies.  Members this plan
        has not built stay lazy on the shard too.
        """
        if not (0 <= start < stop <= self.mb):
            raise ValueError(
                f"invalid block-row slice [{start}, {stop}) for {self.mb} "
                f"block rows"
            )
        p = self.p
        shard = _IndexPlan.__new__(_IndexPlan)
        shard.p = p
        shard.mb = stop - start
        shard.nb = self.nb
        # The last shard of a row-padded matrix keeps the padding.
        shard.shape = (min(shard.mb * p, self.shape[0] - start * p), self.shape[1])
        shard.ks = self.ks[start:stop]
        shard.aligned_m = shard.shape[0] == shard.mb * p
        shard.aligned_n = self.aligned_n
        shard.full_support = shard.aligned_m and shard.aligned_n
        rows = np.ascontiguousarray(self.rows[start:stop] - start * p)
        rows.setflags(write=False)
        shard.rows = rows
        shard.cols = self.cols[start:stop]
        shard.support = self.support[start:stop]
        shard.flat_cols = shard.cols.reshape(-1)
        shard.nnz = int(shard.support.sum())
        if self._t_arrays is not None:
            t_src, t_cols = self._t_arrays
            # Re-base: shard slot (bj, bi', d) reads data[start + bi'] of
            # the parent, i.e. parent flat index minus the sliced-off rows.
            t_src_s = np.ascontiguousarray(
                t_src[:, start:stop] - start * self.nb * p
            )
            t_cols_s = np.ascontiguousarray(t_cols[:, start:stop] - start * p)
            t_src_s.setflags(write=False)
            t_cols_s.setflags(write=False)
            shard._t_arrays = (t_src_s, t_cols_s)
        else:
            shard._t_arrays = None
        shard._support_coords = None
        shard._csr_structs = {}
        shard.value_dtype_hint = None
        shard.fixed_point_hint = None
        return shard

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def warm(self) -> "_IndexPlan":
        """Force-build every lazy member (transpose pair, support
        coordinates, both CSR skeletons).  Returns ``self``."""
        self.support_coords()
        self.transpose_arrays()
        self.csr_struct(False)
        self.csr_struct(True)
        return self

    def to_bytes(
        self,
        warm: bool = True,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> bytes:
        """Serialize the plan (an ``.npz`` payload) for later reattachment.

        With ``warm`` (the default) every lazy member is built first, so a
        plan restored by :meth:`from_bytes` never recomputes *any* index
        arithmetic -- the property deployment surfaces rely on.  Pass
        ``warm=False`` to persist only what has been built so far (e.g. a
        forward-only plan for an inference-only artifact).

        ``value_dtype``/``fixed_point`` (normally supplied by
        :meth:`BlockPermutedDiagonalMatrix.plan_bytes`) tag the payload
        with the owning matrix's value-storage mode so
        :meth:`BlockPermutedDiagonalMatrix.from_plan` can restore it at
        the persisted precision.
        """
        if warm:
            self.warm()
        payload: dict[str, np.ndarray] = {
            "version": np.int64(_PLAN_FORMAT_VERSION),
            "p": np.int64(self.p),
            "shape": np.asarray(self.shape, dtype=np.int64),
            "nnz": np.int64(self.nnz),
            "ks": self.ks,
            "rows": self.rows,
            "cols": self.cols,
            "support": self.support,
        }
        if value_dtype is not None:
            payload["vd"] = np.asarray(
                _value_types.validate_value_dtype(value_dtype)
            )
            if fixed_point is not None:
                payload["fp"] = np.asarray(
                    [fixed_point.total_bits, fixed_point.frac_bits],
                    dtype=np.int64,
                )
        for key, attr in _PLAN_LAZY_FIELDS:
            value = getattr(self, attr)
            if value is not None:
                for pos, arr in enumerate(value):
                    payload[f"{key}{pos}"] = arr
        for transposed, struct in self._csr_structs.items():
            for pos, arr in enumerate(struct):
                payload[f"csr{int(transposed)}_{pos}"] = arr
        buffer = io.BytesIO()
        np.savez(buffer, **payload)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "_IndexPlan":
        """Rebuild a plan from :meth:`to_bytes` without index recomputation.

        Every array is restored verbatim (and re-frozen read-only); members
        absent from the payload stay lazy and would be built on first use.
        """
        with np.load(io.BytesIO(bytes(blob))) as archive:
            version = int(archive["version"])
            if not _PLAN_MIN_FORMAT_VERSION <= version <= _PLAN_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported index-plan format version {version} "
                    f"(expected {_PLAN_MIN_FORMAT_VERSION}.."
                    f"{_PLAN_FORMAT_VERSION})"
                )
            plan = cls.__new__(cls)
            plan.value_dtype_hint = (
                str(archive["vd"]) if "vd" in archive.files else None
            )
            plan.fixed_point_hint = (
                tuple(int(v) for v in archive["fp"])
                if "fp" in archive.files
                else None
            )
            plan.p = int(archive["p"])
            plan.shape = tuple(int(v) for v in archive["shape"])
            plan.nnz = int(archive["nnz"])
            ks = archive["ks"]
            plan.mb, plan.nb = ks.shape
            m, n = plan.shape
            plan.aligned_m = m == plan.mb * plan.p
            plan.aligned_n = n == plan.nb * plan.p
            plan.full_support = plan.aligned_m and plan.aligned_n
            rows, cols, support = (
                archive["rows"], archive["cols"], archive["support"]
            )
            for arr in (ks, rows, cols, support):
                arr.setflags(write=False)
            plan.ks = ks
            plan.rows, plan.cols, plan.support = rows, cols, support
            plan.flat_cols = cols.reshape(-1)
            for key, attr in _PLAN_LAZY_FIELDS:
                if f"{key}0" in archive.files:
                    arrays = []
                    pos = 0
                    while f"{key}{pos}" in archive.files:
                        arr = archive[f"{key}{pos}"]
                        arr.setflags(write=False)
                        arrays.append(arr)
                        pos += 1
                    setattr(plan, attr, tuple(arrays))
                else:
                    setattr(plan, attr, None)
            plan._csr_structs = {}
            for transposed in (False, True):
                prefix = f"csr{int(transposed)}_"
                if f"{prefix}0" in archive.files:
                    struct = tuple(
                        archive[f"{prefix}{pos}"] for pos in range(3)
                    )
                    for arr in struct:
                        arr.setflags(write=False)
                    plan._csr_structs[transposed] = struct
        return plan


class BlockPermutedDiagonalMatrix:
    """An ``m x n`` matrix made of ``p x p`` permuted diagonal blocks.

    Storage layout: ``data[bi, bj, c]`` is the non-zero of block
    ``(bi, bj)`` in its row ``c``, located at global position
    ``(bi*p + c, bj*p + (c + ks[bi, bj]) % p)``.

    The structure ``(ks, shape, p)`` is fixed at construction -- ``ks`` is
    exposed read-only and ``shape`` is a property -- and all index
    arithmetic derived from it is cached (see the module docstring).  Use
    :meth:`set_structure` to mutate it and :meth:`like` to create siblings
    that share the cached plan.

    Args:
        data: array of shape ``(mb, nb, p)`` with the non-zero values.
            Aliased, not copied, when already in the storage dtype with a
            zeroed padding region (the aliasing contract -- see the module
            docstring).  For ``int16`` storage this must hold integer
            fixed-point *codes*, not float values.
        ks: integer array of shape ``(mb, nb)`` with per-block permutation
            parameters (reduced modulo ``p``).
        shape: logical ``(m, n)``; defaults to the padded ``(mb*p, nb*p)``.
        backend: pin this matrix to a named kernel backend (``"gather"``,
            ``"csr"``, ``"numba"``); ``None`` follows the process default
            (see :mod:`repro.core.backends`).
        value_dtype: value-storage mode (``"float64"``, ``"float32"``,
            ``"int16"``); ``None`` follows the process default (see
            :mod:`repro.core.value_types`).
        fixed_point: the :class:`~repro.nn.quantization.FixedPointFormat`
            the stored codes are in; required for (and exclusive to)
            ``int16`` storage.
    """

    def __init__(
        self,
        data: np.ndarray,
        ks: np.ndarray,
        shape: tuple[int, int] | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> None:
        self._value_dtype, self._fixed_point = _resolve_value_dtype(
            value_dtype, fixed_point
        )
        data = self._coerce_values(data)
        ks = np.asarray(ks, dtype=np.int64)
        if data.ndim != 3:
            raise ValueError(f"data must have shape (mb, nb, p), got {data.shape}")
        mb, nb, p = data.shape
        if ks.shape != (mb, nb):
            raise ValueError(
                f"ks shape {ks.shape} does not match data blocks ({mb}, {nb})"
            )
        if p <= 0:
            raise ValueError("block size p must be positive")
        self.p = p
        ks = ks % p
        ks.setflags(write=False)
        self._ks = ks
        if shape is None:
            shape = (mb * p, nb * p)
        m, n = shape
        if not (mb * p - p < m <= mb * p and nb * p - p < n <= nb * p):
            raise ValueError(
                f"logical shape {shape} inconsistent with {mb}x{nb} blocks of p={p}"
            )
        self._shape = (int(m), int(n))
        self._plan: _IndexPlan | None = None
        self._csr_cache: dict[bool, tuple] = {}
        self._backend = self._normalize_backend(backend)
        self.data = data  # through the property: masks padding only if needed

    # ------------------------------------------------------------------
    # Structure access and the sanctioned mutation API
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)``.  Mutate via :meth:`set_structure` only."""
        return self._shape

    @property
    def ks(self) -> np.ndarray:
        """Per-block permutation parameters (read-only array)."""
        return self._ks

    @property
    def data(self) -> np.ndarray:
        """Stored values, shape ``(mb, nb, p)``.

        Assignment validates the shape and enforces the padding rule under
        the aliasing contract: the array is aliased when its padding region
        is already zero, and replaced by a masked copy only otherwise.
        """
        return self._data

    def _coerce_values(self, value: np.ndarray) -> np.ndarray:
        """``value`` in the storage dtype, aliasing whenever possible.

        The float modes cast (``np.asarray`` aliases when the dtype
        already matches).  ``int16`` storage holds fixed-point *codes*:
        float input is rejected rather than silently quantized -- encode
        through :meth:`with_value_dtype` -- and wider integer input is
        range-checked before narrowing.
        """
        if self._value_dtype == "int16":
            value = np.asarray(value)
            if value.dtype == np.int16:
                return value
            if value.dtype.kind not in "iu":
                raise TypeError(
                    f"int16 value storage holds fixed-point codes; got "
                    f"{value.dtype} values (encode via with_value_dtype)"
                )
            info = np.iinfo(np.int16)
            if value.size and (
                value.min() < info.min or value.max() > info.max
            ):
                raise ValueError(
                    f"integer codes outside the int16 range "
                    f"[{info.min}, {info.max}]"
                )
            return value.astype(np.int16)
        return np.asarray(
            value, dtype=_value_types.storage_dtype(self._value_dtype)
        )

    @data.setter
    def data(self, value: np.ndarray) -> None:
        value = self._coerce_values(value)
        mb, nb = self._ks.shape
        if value.shape != (mb, nb, self.p):
            raise ValueError(
                f"data must have shape ({mb}, {nb}, {self.p}), got {value.shape}"
            )
        if self._shape != (mb * self.p, nb * self.p):
            support = self._get_plan().support
            if np.any(value[~support]):
                value = value * support  # force padding region to zero
        self._data = value

    # ------------------------------------------------------------------
    # Value storage
    # ------------------------------------------------------------------

    @property
    def value_dtype(self) -> str:
        """Value-storage mode: ``"float64"``, ``"float32"`` or ``"int16"``."""
        return self._value_dtype

    @property
    def fixed_point(self):
        """The codes' :class:`~repro.nn.quantization.FixedPointFormat`
        (``int16`` storage only; ``None`` for the float modes)."""
        return self._fixed_point

    @property
    def compute_dtype(self) -> np.dtype:
        """The dtype products cast inputs to and accumulate in.

        ``float32`` storage computes in float32 (the speedup); everything
        else -- including ``int16``, whose codes are dequantized -- runs
        the float64 reference arithmetic.
        """
        if self._value_dtype == "float32":
            return np.dtype(np.float32)
        return np.dtype(np.float64)

    def _kernel_data(self) -> np.ndarray:
        """Values as kernel backends consume them.

        The storage array itself for the float modes (zero-copy); for
        ``int16``, the codes dequantized to float64 in one fused multiply
        (exact: the scale is a power of two).  Backends must read values
        through this, never :attr:`data`, so they stay dtype-agnostic.
        """
        if self._value_dtype == "int16":
            from repro.nn.quantization import decode_fixed_point

            return decode_fixed_point(self._data, self._fixed_point)
        return self._data

    def with_value_dtype(
        self, value_dtype: str, fixed_point=None
    ) -> "BlockPermutedDiagonalMatrix":
        """Sibling holding the same logical weights at another value dtype.

        Shares this matrix's cached index plan (like :meth:`like`).
        Converting *to* ``int16`` encodes the logical (dequantized, for an
        int16 source) float64 values into fixed-point codes, deriving a
        covering :class:`~repro.nn.quantization.FixedPointFormat` when
        ``fixed_point`` is omitted; converting to a float mode decodes.
        A no-op conversion (same dtype, no new format) aliases storage.
        """
        name = _value_types.validate_value_dtype(value_dtype)
        logical = np.asarray(self._kernel_data(), dtype=np.float64)
        if name == "int16":
            from repro.nn.quantization import (
                choose_fixed_point_format,
                encode_fixed_point,
            )

            fmt = fixed_point or choose_fixed_point_format(logical)
            data = encode_fixed_point(logical, fmt)
        else:
            if fixed_point is not None:
                raise ValueError(
                    f"fixed_point only applies to int16 value storage, "
                    f"not {name!r}"
                )
            fmt = None
            data = logical.astype(
                _value_types.storage_dtype(name), copy=False
            )
        out = self.__class__.__new__(self.__class__)
        out.p = self.p
        out._ks = self._ks
        out._shape = self._shape
        out._plan = self._get_plan()
        out._csr_cache = {}
        out._backend = self._backend
        out._value_dtype = name
        out._fixed_point = fmt
        out.data = data
        return out

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize_backend(backend: str | None) -> str | None:
        if backend is None:
            return None
        name = _backends.validate_backend_name(backend)
        return None if name == _backends.AUTO else name

    @property
    def backend(self) -> str | None:
        """Pinned backend name, or ``None`` when following the default."""
        return self._backend

    def set_backend(self, backend: str | None) -> "BlockPermutedDiagonalMatrix":
        """Pin (or, with ``None``/``"auto"``, unpin) this matrix's backend.

        Only the dispatch target changes -- the cached index plan and CSR
        value buffers survive, so switching is free.

        Returns:
            ``self``, for chaining.
        """
        self._backend = self._normalize_backend(backend)
        return self

    def resolved_backend(self) -> str:
        """The backend name a product call would execute on right now."""
        return self._resolve_backend().name

    def _resolve_backend(self) -> _backends.KernelBackend:
        name = self._backend or _backends.default_backend()
        if name == _backends.AUTO:
            name = "csr" if _scipy_sparse is not None else "gather"
        return _backends.get_backend(name)

    def set_structure(
        self,
        ks: np.ndarray | None = None,
        shape: tuple[int, int] | None = None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Sanctioned structure mutation: swap ``ks`` and/or the logical shape.

        Validates exactly like ``__init__``, re-applies the padding mask to
        the stored values under the new structure, and invalidates the
        cached index plan (plus any CSR skeletons derived from it).  The
        re-mask happens **in place** whenever the buffer is writable, so
        the data-aliasing contract (e.g. a ``Parameter`` sharing storage)
        survives the mutation.

        Returns:
            ``self``, for chaining.
        """
        mb, nb, p = self._data.shape
        if ks is not None:
            ks = np.asarray(ks, dtype=np.int64)
            if ks.shape != (mb, nb):
                raise ValueError(
                    f"ks shape {ks.shape} does not match data blocks ({mb}, {nb})"
                )
            ks = ks % p
            ks.setflags(write=False)
            self._ks = ks
        if shape is not None:
            m, n = shape
            if not (mb * p - p < m <= mb * p and nb * p - p < n <= nb * p):
                raise ValueError(
                    f"logical shape {shape} inconsistent with {mb}x{nb} blocks of p={p}"
                )
            self._shape = (int(m), int(n))
        self._plan = None
        self._csr_cache = {}
        # Re-mask under the new structure, in place when possible so any
        # consumer aliasing the buffer keeps seeing this matrix's values.
        if self._shape != (mb * p, nb * p):
            support = self._get_plan().support
            if np.any(self._data[~support]):
                try:
                    with _ensure_writable(self._data):
                        self._data[~support] = 0.0
                except ValueError:
                    # Genuinely immutable buffer (read-only base we do not
                    # own): aliasing cannot survive, mask into a copy.
                    self._data = self._data * support
        return self

    def like(self, data: np.ndarray) -> "BlockPermutedDiagonalMatrix":
        """New matrix with this structure, **sharing** the cached index plan.

        Use when many value sets ride one structure (per-offset channel
        matrices of a lowered convolution, weight-shared codebook copies):
        the index arithmetic is computed once for the whole family.
        ``data`` follows the aliasing contract.
        """
        out = self.__class__.__new__(self.__class__)
        out.p = self.p
        out._ks = self._ks
        out._shape = self._shape
        out._plan = self._get_plan()
        out._csr_cache = {}
        out._backend = self._backend
        out._value_dtype = self._value_dtype
        out._fixed_point = self._fixed_point
        out.data = data
        return out

    def row_shard(
        self, start_block: int, stop_block: int
    ) -> "BlockPermutedDiagonalMatrix":
        """Shard covering block rows ``[start_block, stop_block)``.

        The shard **aliases** this matrix's value storage (its ``data`` is
        a view of the corresponding block-row slice, so in-place weight
        updates stay visible) and its index plan is derived from this
        matrix's cached plan by pure slicing
        (:meth:`_IndexPlan.row_block_slice`) -- no index arithmetic is
        recomputed per shard.  Row shards partition the output dimension:
        stacking every shard's product output reproduces the full product
        bit for bit, which is the contract the sharded serving runtime
        (:mod:`repro.serve`) is built on.
        """
        plan = self._get_plan().row_block_slice(start_block, stop_block)
        out = self.__class__.__new__(self.__class__)
        out.p = self.p
        out._ks = plan.ks
        out._shape = plan.shape
        out._plan = plan
        out._csr_cache = {}
        out._backend = self._backend
        out._value_dtype = self._value_dtype
        out._fixed_point = self._fixed_point
        out.data = self._data[start_block:stop_block]
        return out

    def row_shards(self, num_shards: int) -> list["BlockPermutedDiagonalMatrix"]:
        """Partition into ``num_shards`` contiguous row shards.

        Block rows are split as evenly as possible
        (:func:`row_shard_bounds`); see :meth:`row_shard` for the aliasing
        and plan-sharing guarantees.
        """
        return [
            self.row_shard(start, stop)
            for start, stop in row_shard_bounds(self.mb, num_shards)
        ]

    def _get_plan(self) -> _IndexPlan:
        plan = self._plan
        if plan is None:
            plan = self._plan = _IndexPlan(self._ks, self._shape, self.p)
        return plan

    # ------------------------------------------------------------------
    # Plan serialization
    # ------------------------------------------------------------------

    def plan_bytes(self, warm: bool = True) -> bytes:
        """Serialized index plan (see :meth:`_IndexPlan.to_bytes`).

        Persist this next to the packed values and rebuild with
        :meth:`from_plan` (or reattach with :meth:`adopt_plan`) to skip all
        index arithmetic at load time.  The blob is tagged with this
        matrix's value dtype (and fixed-point format, if any) so
        :meth:`from_plan` restores the persisted precision by default.
        """
        return self._get_plan().to_bytes(
            warm=warm,
            value_dtype=self._value_dtype,
            fixed_point=self._fixed_point,
        )

    def adopt_plan(
        self, plan: "_IndexPlan | bytes"
    ) -> "BlockPermutedDiagonalMatrix":
        """Attach a precomputed (e.g. deserialized) index plan.

        The plan must describe exactly this matrix's structure
        ``(ks, shape, p)``; a mismatch raises ``ValueError`` rather than
        silently corrupting products.

        Returns:
            ``self``, for chaining.
        """
        if isinstance(plan, (bytes, bytearray, memoryview)):
            plan = _IndexPlan.from_bytes(plan)
        if (
            plan.p != self.p
            or plan.shape != self._shape
            or plan.ks.shape != self._ks.shape
            or not np.array_equal(plan.ks, self._ks)
        ):
            raise ValueError(
                f"plan structure (p={plan.p}, shape={plan.shape}) does not "
                f"match matrix (p={self.p}, shape={self._shape})"
            )
        self._plan = plan
        self._csr_cache = {}
        return self

    @classmethod
    def from_plan(
        cls,
        plan: "_IndexPlan | bytes",
        data: np.ndarray,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Matrix around a precomputed plan: **no index arithmetic runs**.

        The inverse of (:meth:`plan_bytes`, :meth:`to_q`): deployment
        surfaces persist both and reconstruct here, paying only the
        deserialization.  ``data`` follows the aliasing contract.

        The value dtype is resolved in order: the explicit arguments, the
        dtype tag a version-2 plan blob carries (what
        :meth:`plan_bytes` recorded), then the dtype of ``data`` itself.
        Untagged ``int16`` data is ambiguous -- codes are meaningless
        without their format -- and is rejected rather than guessed.
        """
        if isinstance(plan, (bytes, bytearray, memoryview)):
            plan = _IndexPlan.from_bytes(plan)
        if value_dtype is None:
            value_dtype = plan.value_dtype_hint
            if fixed_point is None and plan.fixed_point_hint is not None:
                from repro.nn.quantization import FixedPointFormat

                fixed_point = FixedPointFormat(*plan.fixed_point_hint)
        if value_dtype is None:
            kind = np.asarray(data).dtype
            if kind == np.float32:
                value_dtype = "float32"
            elif kind == np.int16:
                raise ValueError(
                    "int16 data needs its FixedPointFormat: pass "
                    "value_dtype='int16' and fixed_point=..., or use a "
                    "dtype-tagged plan blob"
                )
            else:
                value_dtype = "float64"
        out = cls.__new__(cls)
        out._value_dtype, out._fixed_point = _resolve_value_dtype(
            value_dtype, fixed_point
        )
        out.p = plan.p
        out._ks = plan.ks
        out._shape = plan.shape
        out._plan = plan
        out._csr_cache = {}
        out._backend = cls._normalize_backend(backend)
        out.data = data
        return out

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(
        cls,
        shape: tuple[int, int],
        p: int,
        spec: PermutationSpec | None = None,
        ks: np.ndarray | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> "BlockPermutedDiagonalMatrix":
        """All-zero matrix of logical ``shape`` with block size ``p``."""
        m, n = shape
        mb, nb = -(-m // p), -(-n // p)
        if ks is None:
            spec = spec or PermutationSpec()
            ks = spec.generate(mb * nb, p).reshape(mb, nb)
        name, fmt = _resolve_value_dtype(value_dtype, fixed_point)
        return cls(
            np.zeros((mb, nb, p), dtype=_value_types.storage_dtype(name)),
            ks,
            shape=shape,
            backend=backend,
            value_dtype=name,
            fixed_point=fmt,
        )

    @classmethod
    def random(
        cls,
        shape: tuple[int, int],
        p: int,
        spec: PermutationSpec | None = None,
        scale: float | None = None,
        rng: np.random.Generator | int | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Gaussian-initialized PD matrix.

        ``scale`` defaults to ``sqrt(p / n)``: each output unit receives
        ``n / p`` non-zero inputs, so this matches He/Glorot-style fan-in
        scaling on the *effective* (sparse) fan-in.

        For ``value_dtype="int16"`` the samples are drawn at float64 and
        then encoded (deriving a covering format when ``fixed_point`` is
        omitted), so the same seed yields the same underlying weights at
        every precision.
        """
        requested = (
            _value_types.validate_value_dtype(value_dtype)
            if value_dtype is not None
            else _value_types.default_value_dtype()
        )
        out = cls.zeros(
            shape,
            p,
            spec=spec,
            backend=backend,
            value_dtype="float64" if requested == "int16" else requested,
        )
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if scale is None:
            scale = float(np.sqrt(p / max(shape[1], 1)))
        out.data = rng.normal(0.0, scale, size=out.data.shape)
        if requested == "int16":
            return out.with_value_dtype("int16", fixed_point=fixed_point)
        if fixed_point is not None:
            raise ValueError(
                f"fixed_point only applies to int16 value storage, "
                f"not {requested!r}"
            )
        return out

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        p: int,
        ks: np.ndarray | None = None,
        spec: PermutationSpec | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Project a dense matrix onto the PD support (keep on-diagonal entries).

        For fixed ``ks`` this is the optimal approximation in the L2 sense
        (Sec. III-F): the kept entries are untouched and everything off the
        support contributes its full energy to the error no matter what.
        The projection runs at float64; a reduced-precision ``value_dtype``
        is applied to the result (via :meth:`with_value_dtype`).
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {dense.shape}")
        requested = (
            _value_types.validate_value_dtype(value_dtype)
            if value_dtype is not None
            else _value_types.default_value_dtype()
        )
        out = cls.zeros(
            dense.shape, p, spec=spec, ks=ks, backend=backend,
            value_dtype="float64",
        )
        flat, rows, cols = out._get_plan().support_coords()
        data = np.zeros(out.data.shape)
        data.reshape(-1)[flat] = dense[rows, cols]
        out.data = data
        if requested != "float64" or fixed_point is not None:
            return out.with_value_dtype(requested, fixed_point=fixed_point)
        return out

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def mb(self) -> int:
        """Number of block rows."""
        return self._data.shape[0]

    @property
    def nb(self) -> int:
        """Number of block columns."""
        return self._data.shape[1]

    @property
    def num_blocks(self) -> int:
        return self.mb * self.nb

    @property
    def nnz(self) -> int:
        """Number of stored (non-padding) entries: ``~ m*n/p``."""
        return self._get_plan().nnz

    @property
    def compression_ratio(self) -> float:
        """Dense element count over stored element count (== ``p`` unpadded)."""
        return self.shape[0] * self.shape[1] / self.nnz

    def support_mask(self) -> np.ndarray:
        """Boolean ``(mb, nb, p)`` mask of entries inside the logical shape.

        Read-only view of the cached index plan; copy before mutating.
        """
        return self._get_plan().support

    def _global_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Global ``(row, col)`` of every stored slot, each ``(mb, nb, p)``.

        Read-only views of the cached index plan.
        """
        plan = self._get_plan()
        return plan.rows, plan.cols

    def support_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(rows, cols)`` 1-D global coordinates of every in-bounds slot.

        The cheap way to enumerate the support (e.g. for connectivity
        analysis) without materializing ``dense_mask``.
        """
        _, rows, cols = self._get_plan().support_coords()
        return rows, cols

    def dense_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` mask of the PD support in dense coordinates."""
        mask = np.zeros(self.shape, dtype=bool)
        _, rows, cols = self._get_plan().support_coords()
        mask[rows, cols] = True
        return mask

    def to_dense(self) -> np.ndarray:
        """Materialize the full ``m x n`` dense array.

        Always float64, holding the *logical* weights (fixed-point codes
        come out dequantized) -- the reference the conformance tolerances
        are stated against.
        """
        dense = np.zeros(self.shape)
        flat, rows, cols = self._get_plan().support_coords()
        dense[rows, cols] = self._kernel_data().reshape(-1)[flat]
        return dense

    def to_q(self) -> np.ndarray:
        """Packed non-zero vector ``q`` (block-major, length ``mb*nb*p``).

        ``q[l*p + c]`` is the row-``c`` non-zero of block ``l = bi*nb + bj``,
        matching the paper's storage of "only the mn/p-length vector q".
        Returned in the storage dtype (fixed-point codes for ``int16``),
        so persisting ``q`` keeps the compressed footprint.
        """
        return self._data.reshape(-1).copy()

    @classmethod
    def from_q(
        cls,
        q: np.ndarray,
        shape: tuple[int, int],
        p: int,
        ks: np.ndarray,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Rebuild from a packed ``q`` vector (inverse of :meth:`to_q`)."""
        m, n = shape
        mb, nb = -(-m // p), -(-n // p)
        q = np.asarray(q)
        if q.size != mb * nb * p:
            raise ValueError(
                f"q has {q.size} entries, expected {mb * nb * p} for "
                f"shape {shape} with p={p}"
            )
        return cls(
            q.reshape(mb, nb, p),
            np.asarray(ks).reshape(mb, nb),
            shape=shape,
            backend=backend,
            value_dtype=value_dtype,
            fixed_point=fixed_point,
        )

    def transpose(self) -> "BlockPermutedDiagonalMatrix":
        """Transpose; also block-PD, with ``k_t = (p - k) mod p`` per block.

        The backward pass no longer calls this -- :meth:`rmatmat` and
        :meth:`rmatvec` run transpose-free off the cached plan -- but the
        structured transpose remains part of the public API.
        """
        t_src, _ = self._get_plan().transpose_arrays()
        data_t = self._data.ravel()[t_src]
        ks_t = (-self._ks.T) % self.p
        return BlockPermutedDiagonalMatrix(
            data_t,
            ks_t,
            shape=(self.shape[1], self.shape[0]),
            value_dtype=self._value_dtype,
            fixed_point=self._fixed_point,
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _gather_columns(self) -> np.ndarray:
        """Global input column index feeding each stored slot, ``(mb, nb, p)``."""
        return self._get_plan().cols

    def _csr_values(self, perm: np.ndarray) -> np.ndarray:
        """CSR value buffer in the compute dtype: an ``nnz``-sized gather,
        fused with the dequantizing multiply for ``int16`` codes."""
        gathered = self._data.ravel()[perm]
        if self._value_dtype == "int16":
            from repro.nn.quantization import decode_fixed_point

            return decode_fixed_point(gathered, self._fixed_point)
        return gathered

    def _csr(self, transposed: bool):
        """Cached ``scipy.sparse.csr_matrix`` view of ``W`` (or ``W.T``).

        The skeleton comes from the index plan; only ``nnz`` values are
        re-gathered per call, so in-place weight updates are always
        reflected.  The value buffer is in the compute dtype (float32 for
        float32 storage -- scipy's spmm then moves and multiplies half the
        bytes -- float64 otherwise).
        """
        key = bool(transposed)
        plan = self._get_plan()
        entry = self._csr_cache.get(key)
        if entry is None or entry[0] is not plan:
            indptr, indices, perm = plan.csr_struct(key)
            shape = (self.shape[1], self.shape[0]) if transposed else self.shape
            mat = _scipy_sparse.csr_matrix(
                (self._csr_values(perm), indices, indptr), shape=shape
            )
            self._csr_cache[key] = (plan, mat, perm)
        else:
            _, mat, perm = entry
            mat.data[:] = self._csr_values(perm)
        return self._csr_cache[key][1]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = W @ x`` touching only the ``m*n/p`` stored weights."""
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.shape != (self.shape[1],):
            raise ValueError(f"expected x of shape ({self.shape[1]},), got {x.shape}")
        return self._resolve_backend().matvec(self, x)

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Batched forward product ``Y[b] = W @ X[b]`` for ``X`` of shape ``(B, n)``.

        In dense terms ``Y = X @ W.T`` (row-major batch against the logical
        ``(m, n)`` weight): the forward pass of an FC layer (``a = W x`` per
        sample, Sec. III-B) vectorized over the batch.  Returns ``(B, m)``,
        in :attr:`compute_dtype`.
        """
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.ndim != 2 or x.shape[1] != self.shape[1]:
            raise ValueError(
                f"expected X of shape (B, {self.shape[1]}), got {x.shape}"
            )
        return self._resolve_backend().matmat(self, x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``W.T @ y`` (gradient propagation, Eqn. (3)), transpose-free."""
        y = np.asarray(y, dtype=self.compute_dtype)
        if y.shape != (self.shape[0],):
            raise ValueError(f"expected y of shape ({self.shape[0]},), got {y.shape}")
        return self._resolve_backend().rmatvec(self, y)

    def rmatmat(self, y: np.ndarray) -> np.ndarray:
        """Batched ``W.T`` product for ``Y`` of shape ``(B, m)`` -> ``(B, n)``.

        The backward input gradient ``dx = W.T @ dy`` (Eqn. (3)).  Runs
        directly off the cached plan's transposed skeleton -- no
        ``transpose()`` matrix object is constructed.
        """
        y = np.asarray(y, dtype=self.compute_dtype)
        if y.ndim != 2 or y.shape[1] != self.shape[0]:
            raise ValueError(
                f"expected Y of shape (B, {self.shape[0]}), got {y.shape}"
            )
        return self._resolve_backend().rmatmat(self, y)

    def grad_data(self, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Gradient of a batch loss w.r.t. :attr:`data` (Eqn. (2)).

        ``dq[bi, bj, c] = sum_b dy[b, bi*p+c] * x[b, col(bi, bj, c)]`` --
        only the stored (non-zero) weights receive gradient, which is what
        keeps the trained network block-permuted diagonal.  Backends batch
        this against the shared column skeleton (see
        :func:`repro.core.backends.gather.batched_grad_data`).

        Args:
            x: layer input, shape ``(B, n)``.
            dy: upstream gradient, shape ``(B, m)``.

        The result is the gradient w.r.t. the *logical* weights, in
        :attr:`compute_dtype` -- it never depends on the stored values, so
        for ``int16`` storage it carries no code scale.
        """
        x = np.asarray(x, dtype=self.compute_dtype)
        dy = np.asarray(dy, dtype=self.compute_dtype)
        if x.ndim != 2 or x.shape[1] != self.shape[1]:
            raise ValueError(
                f"expected x of shape (B, {self.shape[1]}), got {x.shape}"
            )
        batch = x.shape[0]
        if dy.shape != (batch, self.shape[0]):
            raise ValueError(
                f"dy shape {dy.shape} does not match (B={batch}, m={self.shape[0]})"
            )
        return self._resolve_backend().grad_data(self, x, dy)

    def frobenius_error(self, dense: np.ndarray) -> float:
        """Frobenius-norm distance ``||dense - W||_F`` (approximation error)."""
        return float(np.linalg.norm(np.asarray(dense) - self.to_dense()))

    def __matmul__(self, x):
        if isinstance(x, np.ndarray):
            if x.ndim == 1:
                return self.matvec(x)
            if x.ndim == 2:
                return self.matmat(x.T).T
        return NotImplemented

    def __repr__(self) -> str:
        dtype = (
            "" if self._value_dtype == "float64"
            else f", value_dtype={self._value_dtype}"
        )
        return (
            f"BlockPermutedDiagonalMatrix(shape={self.shape}, p={self.p}, "
            f"blocks={self.mb}x{self.nb}, nnz={self.nnz}{dtype})"
        )
