"""Block-permuted diagonal matrices: the paper's weight representation.

An ``m x n`` weight matrix is tiled with ``p x p`` permuted diagonal blocks
(Eqn. (1)).  Only the ``m*n/p`` diagonal values (the ``q`` vector) and one
small integer per block (``k_l``) are stored; non-zero *positions* are
recomputed arithmetically, which is the property the PermDNN hardware
exploits to eliminate index storage.

When ``m`` or ``n`` is not a multiple of ``p`` the matrix is zero-padded
(footnote 3 of the paper); padded positions are forced to zero and excluded
from storage accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.permutation import PermutationSpec

__all__ = ["BlockPermutedDiagonalMatrix"]

# Below this many gathered elements, matmat uses a single fancy-indexing
# gather; above it, it falls back to a block-row loop to bound memory.
_GATHER_ELEMENT_LIMIT = 50_000_000


class BlockPermutedDiagonalMatrix:
    """An ``m x n`` matrix made of ``p x p`` permuted diagonal blocks.

    Storage layout: ``data[bi, bj, c]`` is the non-zero of block
    ``(bi, bj)`` in its row ``c``, located at global position
    ``(bi*p + c, bj*p + (c + ks[bi, bj]) % p)``.

    Args:
        data: array of shape ``(mb, nb, p)`` with the non-zero values.
        ks: integer array of shape ``(mb, nb)`` with per-block permutation
            parameters (reduced modulo ``p``).
        shape: logical ``(m, n)``; defaults to the padded ``(mb*p, nb*p)``.
    """

    def __init__(
        self,
        data: np.ndarray,
        ks: np.ndarray,
        shape: tuple[int, int] | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        ks = np.asarray(ks, dtype=np.int64)
        if data.ndim != 3:
            raise ValueError(f"data must have shape (mb, nb, p), got {data.shape}")
        mb, nb, p = data.shape
        if ks.shape != (mb, nb):
            raise ValueError(
                f"ks shape {ks.shape} does not match data blocks ({mb}, {nb})"
            )
        if p <= 0:
            raise ValueError("block size p must be positive")
        self.p = p
        self.ks = ks % p
        if shape is None:
            shape = (mb * p, nb * p)
        m, n = shape
        if not (mb * p - p < m <= mb * p and nb * p - p < n <= nb * p):
            raise ValueError(
                f"logical shape {shape} inconsistent with {mb}x{nb} blocks of p={p}"
            )
        self.shape = (int(m), int(n))
        self.data = data
        self.data = data * self.support_mask()  # force padding region to zero

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(
        cls,
        shape: tuple[int, int],
        p: int,
        spec: PermutationSpec | None = None,
        ks: np.ndarray | None = None,
    ) -> "BlockPermutedDiagonalMatrix":
        """All-zero matrix of logical ``shape`` with block size ``p``."""
        m, n = shape
        mb, nb = -(-m // p), -(-n // p)
        if ks is None:
            spec = spec or PermutationSpec()
            ks = spec.generate(mb * nb, p).reshape(mb, nb)
        return cls(np.zeros((mb, nb, p)), ks, shape=shape)

    @classmethod
    def random(
        cls,
        shape: tuple[int, int],
        p: int,
        spec: PermutationSpec | None = None,
        scale: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Gaussian-initialized PD matrix.

        ``scale`` defaults to ``sqrt(p / n)``: each output unit receives
        ``n / p`` non-zero inputs, so this matches He/Glorot-style fan-in
        scaling on the *effective* (sparse) fan-in.
        """
        out = cls.zeros(shape, p, spec=spec)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if scale is None:
            scale = float(np.sqrt(p / max(shape[1], 1)))
        out.data = rng.normal(0.0, scale, size=out.data.shape) * out.support_mask()
        return out

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        p: int,
        ks: np.ndarray | None = None,
        spec: PermutationSpec | None = None,
    ) -> "BlockPermutedDiagonalMatrix":
        """Project a dense matrix onto the PD support (keep on-diagonal entries).

        For fixed ``ks`` this is the optimal approximation in the L2 sense
        (Sec. III-F): the kept entries are untouched and everything off the
        support contributes its full energy to the error no matter what.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {dense.shape}")
        out = cls.zeros(dense.shape, p, spec=spec, ks=ks)
        m, n = dense.shape
        padded = np.zeros((out.mb * p, out.nb * p))
        padded[:m, :n] = dense
        rows, cols = out._global_indices()
        out.data = padded[rows, cols] * out.support_mask()
        return out

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def mb(self) -> int:
        """Number of block rows."""
        return self.data.shape[0]

    @property
    def nb(self) -> int:
        """Number of block columns."""
        return self.data.shape[1]

    @property
    def num_blocks(self) -> int:
        return self.mb * self.nb

    @property
    def nnz(self) -> int:
        """Number of stored (non-padding) entries: ``~ m*n/p``."""
        return int(self.support_mask().sum())

    @property
    def compression_ratio(self) -> float:
        """Dense element count over stored element count (== ``p`` unpadded)."""
        return self.shape[0] * self.shape[1] / self.nnz

    def support_mask(self) -> np.ndarray:
        """Boolean ``(mb, nb, p)`` mask of entries inside the logical shape."""
        m, n = self.shape
        rows, cols = self._global_indices()
        return (rows < m) & (cols < n)

    def _global_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Global ``(row, col)`` of every stored slot, each ``(mb, nb, p)``."""
        c = np.arange(self.p)
        bi = np.arange(self.mb)
        bj = np.arange(self.nb)
        rows = (bi[:, None, None] * self.p + c[None, None, :]) * np.ones(
            (1, self.nb, 1), dtype=np.int64
        )
        cols = bj[None, :, None] * self.p + (c[None, None, :] + self.ks[:, :, None]) % self.p
        return rows.astype(np.int64), cols.astype(np.int64)

    def dense_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` mask of the PD support in dense coordinates."""
        m, n = self.shape
        mask = np.zeros((self.mb * self.p, self.nb * self.p), dtype=bool)
        rows, cols = self._global_indices()
        mask[rows.ravel(), cols.ravel()] = True
        return mask[:m, :n]

    def to_dense(self) -> np.ndarray:
        """Materialize the full ``m x n`` dense array."""
        m, n = self.shape
        dense = np.zeros((self.mb * self.p, self.nb * self.p))
        rows, cols = self._global_indices()
        dense[rows.ravel(), cols.ravel()] = self.data.ravel()
        return dense[:m, :n]

    def to_q(self) -> np.ndarray:
        """Packed non-zero vector ``q`` (block-major, length ``mb*nb*p``).

        ``q[l*p + c]`` is the row-``c`` non-zero of block ``l = bi*nb + bj``,
        matching the paper's storage of "only the mn/p-length vector q".
        """
        return self.data.reshape(-1).copy()

    @classmethod
    def from_q(
        cls,
        q: np.ndarray,
        shape: tuple[int, int],
        p: int,
        ks: np.ndarray,
    ) -> "BlockPermutedDiagonalMatrix":
        """Rebuild from a packed ``q`` vector (inverse of :meth:`to_q`)."""
        m, n = shape
        mb, nb = -(-m // p), -(-n // p)
        q = np.asarray(q, dtype=np.float64)
        if q.size != mb * nb * p:
            raise ValueError(
                f"q has {q.size} entries, expected {mb * nb * p} for "
                f"shape {shape} with p={p}"
            )
        return cls(q.reshape(mb, nb, p), np.asarray(ks).reshape(mb, nb), shape=shape)

    def transpose(self) -> "BlockPermutedDiagonalMatrix":
        """Transpose; also block-PD, with ``k_t = (p - k) mod p`` per block.

        Used by backpropagation: ``dx = W.T @ dy`` (Eqn. (3)).
        """
        ks_t = (-self.ks.T) % self.p
        # Row d of the transposed block holds the original entry whose
        # column was d, i.e. original row (d - k) mod p.
        d = np.arange(self.p)
        src = (d[None, None, :] - self.ks[:, :, None]) % self.p
        data_t = np.take_along_axis(self.data, src, axis=2).transpose(1, 0, 2)
        return BlockPermutedDiagonalMatrix(
            data_t, ks_t, shape=(self.shape[1], self.shape[0])
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _gather_columns(self) -> np.ndarray:
        """Global input column index feeding each stored slot, ``(mb, nb, p)``."""
        __, cols = self._global_indices()
        return cols

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = W @ x`` touching only the ``m*n/p`` stored weights."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"expected x of shape ({self.shape[1]},), got {x.shape}")
        return self.matmat(x[None, :])[0]

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Batched product ``Y = X @ W.T`` for ``X`` of shape ``(B, n)``.

        Returns ``(B, m)``.  This is the forward pass of an FC layer
        (``a = W x`` per sample, Sec. III-B) vectorized over the batch.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.shape[1]:
            raise ValueError(
                f"expected X of shape (B, {self.shape[1]}), got {x.shape}"
            )
        batch = x.shape[0]
        n_pad = self.nb * self.p
        if n_pad != x.shape[1]:
            x_pad = np.zeros((batch, n_pad))
            x_pad[:, : x.shape[1]] = x
        else:
            x_pad = x
        cols = self._gather_columns()
        y_blocks = np.empty((batch, self.mb, self.p))
        if batch * cols.size <= _GATHER_ELEMENT_LIMIT:
            gathered = x_pad[:, cols.reshape(-1)].reshape(
                batch, self.mb, self.nb, self.p
            )
            y_blocks = np.einsum("ijc,bijc->bic", self.data, gathered)
        else:
            for bi in range(self.mb):
                gathered = x_pad[:, cols[bi].reshape(-1)].reshape(
                    batch, self.nb, self.p
                )
                y_blocks[:, bi] = np.einsum("jc,bjc->bc", self.data[bi], gathered)
        return y_blocks.reshape(batch, self.mb * self.p)[:, : self.shape[0]]

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``W.T @ y`` (gradient propagation, Eqn. (3))."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ValueError(f"expected y of shape ({self.shape[0]},), got {y.shape}")
        return self.transpose().matvec(y)

    def rmatmat(self, y: np.ndarray) -> np.ndarray:
        """Batched ``W.T`` product for ``Y`` of shape ``(B, m)`` -> ``(B, n)``."""
        return self.transpose().matmat(y)

    def grad_data(self, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Gradient of a batch loss w.r.t. :attr:`data` (Eqn. (2)).

        ``dq[bi, bj, c] = sum_b dy[b, bi*p+c] * x[b, col(bi, bj, c)]`` --
        only the stored (non-zero) weights receive gradient, which is what
        keeps the trained network block-permuted diagonal.

        Args:
            x: layer input, shape ``(B, n)``.
            dy: upstream gradient, shape ``(B, m)``.
        """
        x = np.asarray(x, dtype=np.float64)
        dy = np.asarray(dy, dtype=np.float64)
        batch = x.shape[0]
        if dy.shape != (batch, self.shape[0]):
            raise ValueError(
                f"dy shape {dy.shape} does not match (B={batch}, m={self.shape[0]})"
            )
        n_pad, m_pad = self.nb * self.p, self.mb * self.p
        x_pad = np.zeros((batch, n_pad))
        x_pad[:, : x.shape[1]] = x
        dy_pad = np.zeros((batch, m_pad))
        dy_pad[:, : dy.shape[1]] = dy
        dy_blocks = dy_pad.reshape(batch, self.mb, self.p)
        cols = self._gather_columns()
        if batch * cols.size <= _GATHER_ELEMENT_LIMIT:
            gathered = x_pad[:, cols.reshape(-1)].reshape(
                batch, self.mb, self.nb, self.p
            )
            grad = np.einsum("bic,bijc->ijc", dy_blocks, gathered)
        else:
            grad = np.empty_like(self.data)
            for bi in range(self.mb):
                gathered = x_pad[:, cols[bi].reshape(-1)].reshape(
                    batch, self.nb, self.p
                )
                grad[bi] = np.einsum("bc,bjc->jc", dy_blocks[:, bi], gathered)
        return grad * self.support_mask()

    def frobenius_error(self, dense: np.ndarray) -> float:
        """Frobenius-norm distance ``||dense - W||_F`` (approximation error)."""
        return float(np.linalg.norm(np.asarray(dense) - self.to_dense()))

    def __matmul__(self, x):
        if isinstance(x, np.ndarray):
            if x.ndim == 1:
                return self.matvec(x)
            if x.ndim == 2:
                return self.matmat(x.T).T
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"BlockPermutedDiagonalMatrix(shape={self.shape}, p={self.p}, "
            f"blocks={self.mb}x{self.nb}, nnz={self.nnz})"
        )
