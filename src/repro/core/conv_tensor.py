"""Block-permuted diagonal structure for 4-D convolution weight tensors.

The paper (Sec. III-C, Fig. 2) views a CONV weight tensor
``F in R^{c_out x c_in x kh x kw}`` as a "macro matrix" over the
(output-channel, input-channel) plane whose entries are whole ``kh x kw``
filter kernels, and imposes the permuted diagonal pattern on that plane:
kernel ``(i, j)`` exists only when channel-matrix entry ``(i, j)`` is on a
permuted diagonal.  Compression ratio is again exactly ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.core.block_perm_diag import BlockPermutedDiagonalMatrix
from repro.core.permutation import PermutationSpec

__all__ = ["BlockPermDiagTensor4D"]


class BlockPermDiagTensor4D:
    """A CONV weight tensor with PD structure on its channel plane.

    Compact storage: ``kernels[bi, bj, c]`` is the ``kh x kw`` kernel of
    channel-plane slot ``(bi*p + c, bj*p + (c + ks[bi,bj]) % p)``.

    Args:
        kernels: array of shape ``(mb, nb, p, kh, kw)``.
        ks: per-block permutation parameters, shape ``(mb, nb)``.
        channels: logical ``(c_out, c_in)``; defaults to padded sizes.
        backend: kernel backend pinned to the channel-plane matrix (and
            inherited by every per-offset matrix a lowering derives from
            it); ``None`` follows the process default.
        value_dtype: value dtype pinned to the channel-plane matrix.  The
            kernels themselves always stay float64, but every per-offset
            matrix a lowering derives via ``plane.like`` quantizes through
            the plane's dtype -- so a tensor that must lower at full
            precision has to pin ``"float64"`` here rather than inherit
            the process default.
    """

    def __init__(
        self,
        kernels: np.ndarray,
        ks: np.ndarray,
        channels: tuple[int, int] | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
    ) -> None:
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 5:
            raise ValueError(
                f"kernels must have shape (mb, nb, p, kh, kw), got {kernels.shape}"
            )
        mb, nb, p, kh, kw = kernels.shape
        # The channel plane is an ordinary block-PD matrix; reuse it for all
        # index arithmetic (one slot per kernel).
        if channels is None:
            channels = (mb * p, nb * p)
        self._plane = BlockPermutedDiagonalMatrix(
            np.ones((mb, nb, p)),
            ks,
            shape=channels,
            backend=backend,
            value_dtype=value_dtype,
        )
        self.kernel_size = (kh, kw)
        self.kernels = kernels * self._plane.support_mask()[..., None, None]

    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        c_out: int,
        c_in: int,
        kernel_size: tuple[int, int],
        p: int,
        spec: PermutationSpec | None = None,
        scale: float | None = None,
        rng: np.random.Generator | int | None = None,
        backend: str | None = None,
    ) -> "BlockPermDiagTensor4D":
        """He-style initialization on the effective fan-in ``c_in/p * kh*kw``."""
        spec = spec or PermutationSpec()
        mb, nb = -(-c_out // p), -(-c_in // p)
        ks = spec.generate(mb * nb, p).reshape(mb, nb)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        kh, kw = kernel_size
        fan_in = max(c_in / p, 1.0) * kh * kw
        if scale is None:
            scale = float(np.sqrt(2.0 / fan_in))
        kernels = rng.normal(0.0, scale, size=(mb, nb, p, kh, kw))
        return cls(kernels, ks, channels=(c_out, c_in), backend=backend)

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        p: int,
        ks: np.ndarray | None = None,
        spec: PermutationSpec | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
    ) -> "BlockPermDiagTensor4D":
        """Optimal L2 projection of a dense ``(c_out, c_in, kh, kw)`` tensor."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 4:
            raise ValueError(f"expected 4-D tensor, got shape {dense.shape}")
        c_out, c_in, kh, kw = dense.shape
        mb, nb = -(-c_out // p), -(-c_in // p)
        if ks is None:
            spec = spec or PermutationSpec()
            ks = spec.generate(mb * nb, p).reshape(mb, nb)
        out = cls(
            np.zeros((mb, nb, p, kh, kw)),
            np.asarray(ks),
            channels=(c_out, c_in),
            backend=backend,
            value_dtype=value_dtype,
        )
        rows, cols = out._plane._global_indices()
        padded = np.zeros((mb * p, nb * p, kh, kw))
        padded[:c_out, :c_in] = dense
        out.kernels = (
            padded[rows.ravel(), cols.ravel()].reshape(mb, nb, p, kh, kw)
            * out._plane.support_mask()[..., None, None]
        )
        return out

    # ------------------------------------------------------------------

    @property
    def p(self) -> int:
        return self._plane.p

    @property
    def plane(self) -> BlockPermutedDiagonalMatrix:
        """The block-PD channel-plane matrix carrying all index arithmetic.

        Its values are a placeholder (ones); consumers use it for the
        cached index plan, the support mask, and as the
        :meth:`~BlockPermutedDiagonalMatrix.like` base of per-offset
        matrix families (see :mod:`repro.hw.conv_lowering`).
        """
        return self._plane

    @property
    def backend(self) -> str | None:
        """Kernel backend pinned to the channel plane (``None`` = default)."""
        return self._plane.backend

    @property
    def ks(self) -> np.ndarray:
        return self._plane.ks

    @property
    def channels(self) -> tuple[int, int]:
        """Logical ``(c_out, c_in)``."""
        return self._plane.shape

    @property
    def shape(self) -> tuple[int, int, int, int]:
        c_out, c_in = self.channels
        return (c_out, c_in) + self.kernel_size

    @property
    def nnz_kernels(self) -> int:
        """Number of stored kernels (``~ c_out*c_in/p``)."""
        return self._plane.nnz

    @property
    def nnz(self) -> int:
        """Number of stored scalar weights."""
        kh, kw = self.kernel_size
        return self.nnz_kernels * kh * kw

    @property
    def compression_ratio(self) -> float:
        c_out, c_in, kh, kw = self.shape
        return c_out * c_in * kh * kw / self.nnz

    def channel_mask(self) -> np.ndarray:
        """Boolean ``(c_out, c_in)`` channel-connectivity mask."""
        return self._plane.dense_mask()

    def dense_mask(self) -> np.ndarray:
        """Boolean ``(c_out, c_in, kh, kw)`` support mask."""
        kh, kw = self.kernel_size
        return np.broadcast_to(
            self.channel_mask()[:, :, None, None], self.shape
        ).copy()

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``(c_out, c_in, kh, kw)`` weight tensor."""
        mb, nb, p = self._plane.data.shape
        kh, kw = self.kernel_size
        rows, cols = self._plane._global_indices()
        dense = np.zeros((mb * p, nb * p, kh, kw))
        dense[rows.ravel(), cols.ravel()] = self.kernels.reshape(-1, kh, kw)
        c_out, c_in = self.channels
        return dense[:c_out, :c_in]

    def project_dense_grad(self, grad: np.ndarray) -> np.ndarray:
        """Zero a dense gradient off the PD support (training rule, Eqn. (5)).

        Updating only supported entries is exactly equivalent to masking the
        dense gradient, and "theoretically guarantees the trained sparse
        network always exhibits block-permuted diagonal structure".
        """
        grad = np.asarray(grad)
        if grad.shape != self.shape:
            raise ValueError(f"grad shape {grad.shape} != tensor shape {self.shape}")
        return grad * self.dense_mask()

    def __repr__(self) -> str:
        return (
            f"BlockPermDiagTensor4D(shape={self.shape}, p={self.p}, "
            f"kernels={self.nnz_kernels})"
        )
