"""Value-storage dtypes for :class:`~repro.core.BlockPermutedDiagonalMatrix`.

The matrix stores only the packed non-zero values ``q``; *how* those
values are stored is independent of the index structure and is described
by a ``value_dtype`` name:

``"float64"``
    The historical default.  Bit-compatible with every pre-existing
    artifact and the reference for all conformance tolerances.
``"float32"``
    Half the memory traffic on the hot path.  Products run end to end in
    float32 (inputs are cast, CSR value buffers stay float32), which is
    where the speedup comes from.
``"int16"``
    Fixed-point codes in the paper's 16-bit weight format
    (:class:`repro.nn.quantization.FixedPointFormat`).  Kernels see the
    codes *dequantized to float64* and accumulate in float64 -- the
    software analogue of the paper's wide accumulators -- so results are
    bit-identical to a float64 matrix holding the dequantized weights.

Because the fixed-point scale is a power of two, dequantize-then-
accumulate equals accumulate-then-scale bit for bit; backends therefore
carry no scaling logic at all (they read
``BlockPermutedDiagonalMatrix._kernel_data()``).

Process-wide default resolution mirrors the kernel-backend registry:
:func:`set_default_value_dtype` wins, then the ``REPRO_VALUE_DTYPE``
environment variable, then ``"float64"``.  Only the two float modes can
be process defaults -- ``int16`` needs a per-matrix
:class:`~repro.nn.quantization.FixedPointFormat` and must be requested
explicitly.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "FLOAT_VALUE_DTYPES",
    "UnknownValueDtypeError",
    "VALUE_DTYPES",
    "default_value_dtype",
    "set_default_value_dtype",
    "storage_dtype",
    "validate_value_dtype",
]

#: Every supported value-storage mode, in documentation order.
VALUE_DTYPES = ("float64", "float32", "int16")

#: The subset usable as a process-wide default (no per-matrix format).
FLOAT_VALUE_DTYPES = ("float64", "float32")

_STORAGE_DTYPES = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
    "int16": np.dtype(np.int16),
}

_ENV_VAR = "REPRO_VALUE_DTYPE"

_default: str | None = None


class UnknownValueDtypeError(ValueError):
    """Raised for a value-dtype name outside :data:`VALUE_DTYPES`."""


def validate_value_dtype(name) -> str:
    """Canonical name for ``name`` (str or numpy dtype-like), or raise.

    Accepts the canonical strings plus anything ``np.dtype`` resolves to
    one of the three storage dtypes (``np.float32``, ``"f4"``, ...).
    """
    if isinstance(name, str) and name in VALUE_DTYPES:
        return name
    try:
        resolved = np.dtype(name)
    except TypeError:
        resolved = None
    if resolved is not None:
        for canonical, dtype in _STORAGE_DTYPES.items():
            if resolved == dtype:
                return canonical
    raise UnknownValueDtypeError(
        f"unknown value_dtype {name!r}; expected one of {VALUE_DTYPES}"
    )


def storage_dtype(name: str) -> np.dtype:
    """The numpy dtype backing storage for a canonical value-dtype name."""
    return _STORAGE_DTYPES[validate_value_dtype(name)]


def set_default_value_dtype(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default value dtype.

    Only the float modes are accepted: an ``int16`` matrix needs an
    explicit per-matrix fixed-point format, so it cannot be a blanket
    default.  Clearing falls back to ``REPRO_VALUE_DTYPE`` / float64.
    """
    global _default
    if name is None:
        _default = None
        return
    canonical = validate_value_dtype(name)
    if canonical not in FLOAT_VALUE_DTYPES:
        raise UnknownValueDtypeError(
            f"only {FLOAT_VALUE_DTYPES} may be process defaults; "
            f"request {canonical!r} per matrix with an explicit format"
        )
    _default = canonical


def default_value_dtype() -> str:
    """The value dtype a constructor uses when none is requested.

    Resolution order: :func:`set_default_value_dtype`, then the
    ``REPRO_VALUE_DTYPE`` environment variable, then ``"float64"``.
    """
    if _default is not None:
        return _default
    env = os.environ.get(_ENV_VAR)
    if env:
        canonical = validate_value_dtype(env)
        if canonical not in FLOAT_VALUE_DTYPES:
            raise UnknownValueDtypeError(
                f"{_ENV_VAR}={env!r}: only {FLOAT_VALUE_DTYPES} may be "
                f"process defaults"
            )
        return canonical
    return "float64"
