"""Runtime debugging aids for the PermDNN stack.

:mod:`repro.debug.sanitizer` is the runtime counterpart of the static
checks in ``tools/repro_lint``: it enforces the data-aliasing and
plan-cache contracts while real code runs (see
``docs/STATIC_ANALYSIS.md``).
"""

from repro.debug.sanitizer import (
    AliasingViolationError,
    PlanRebuildError,
    SanitizerStats,
    current_sanitizer,
    sanitize,
    sanitize_enabled,
)

__all__ = [
    "AliasingViolationError",
    "PlanRebuildError",
    "SanitizerStats",
    "current_sanitizer",
    "sanitize",
    "sanitize_enabled",
]
