"""Runtime aliasing/plan-cache sanitizer.

The PD matrix core promises two things its consumers silently rely on
(see the "Aliasing contract" and "Index-plan cache" sections of
:mod:`repro.core.block_perm_diag`):

1. **Aliasing** -- ``row_shard`` hands out *views* of the parent's value
   storage, and ``data`` assignment aliases the supplied buffer whenever
   padding allows, so in-place weight updates propagate with zero copies.
2. **Plan caching** -- index arithmetic (an :class:`_IndexPlan`) is built
   at most once per structure; only :meth:`set_structure` may invalidate
   it.  A *rebuild* of the same matrix's plan means somebody clobbered
   ``_plan`` behind the cache's back (or dropped a deserialized plan on
   the floor), silently re-running all index arithmetic.

``tools/repro_lint`` rejects the code *shapes* that break these
contracts; this module catches the breakage the linter cannot see, at
runtime.  Inside :func:`sanitize`:

* ``row_shard`` results are verified with :func:`numpy.shares_memory`
  against the parent's storage (an :class:`AliasingViolationError` means
  the view contract broke) and the shard's value buffer is **frozen**
  (``flags.writeable = False``) so any code that writes weights through
  a shard instead of the parent trips a ``ValueError`` at the offending
  line.  Sanctioned in-place core paths lift the freeze temporarily via
  ``_ensure_writable`` and restore it even on exceptions.
* ``_get_plan`` calls are counted, distinguishing first builds from
  rebuilds; :meth:`Sanitizer.assert_no_plan_rebuild` turns rebuilds into
  a :class:`PlanRebuildError`.  Matrices loaded through ``from_plan`` /
  ``adopt_plan`` (engine images, bundles) never count as builds at all,
  which is exactly what a "zero index arithmetic at load time" test
  wants to assert.

Activation: ``with sanitize() as s: ...`` in code/tests, or export
``REPRO_SANITIZE=1`` and the test suite's root conftest wraps every test
automatically.  All patches are process-global (class-level) and fully
undone on context exit, including every writeable flag it touched.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.core.block_perm_diag import BlockPermutedDiagonalMatrix

__all__ = [
    "AliasingViolationError",
    "PlanRebuildError",
    "Sanitizer",
    "SanitizerStats",
    "current_sanitizer",
    "sanitize",
    "sanitize_enabled",
]

_ENV_FLAG = "REPRO_SANITIZE"


class AliasingViolationError(AssertionError):
    """A buffer that must alias (share memory) does not."""


class PlanRebuildError(AssertionError):
    """A cached index plan was rebuilt for the same matrix."""


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE=1`` is exported (test-suite opt-in)."""
    return os.environ.get(_ENV_FLAG) == "1"


@dataclass
class SanitizerStats:
    """Counters accumulated while a :class:`Sanitizer` is active."""

    plan_builds: int = 0
    plan_rebuilds: int = 0
    shard_checks: int = 0
    frozen_buffers: int = 0
    rebuild_sites: list[str] = field(default_factory=list)


class Sanitizer:
    """Context manager installing the runtime contract checks.

    Nestable: an inner scope wraps the outer's patches and unwinds them
    on exit, so events inside the inner scope are counted by both (the
    ``REPRO_SANITIZE=1`` autouse fixture plus an explicit ``sanitize()``
    in a test compose cleanly).  Scopes must exit LIFO, which context
    managers guarantee.
    """

    _stack: "list[Sanitizer]" = []

    def __init__(self) -> None:
        self.stats = SanitizerStats()
        # Matrices that have already built a plan while we watched; a
        # second build for the same matrix is a rebuild.  Weak so the
        # sanitizer never extends matrix lifetimes.
        self._built: "weakref.WeakSet[BlockPermutedDiagonalMatrix]" = (
            weakref.WeakSet()
        )
        # (array, original_writeable) for every flag we flipped.
        self._frozen: list[tuple[np.ndarray, bool]] = []
        self._orig_get_plan = None
        self._orig_row_shard = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Sanitizer":
        Sanitizer._stack.append(self)
        cls = BlockPermutedDiagonalMatrix
        self._orig_get_plan = cls._get_plan
        self._orig_row_shard = cls.row_shard
        sanitizer = self
        orig_get_plan = self._orig_get_plan
        orig_row_shard = self._orig_row_shard

        def _get_plan(matrix):
            if matrix._plan is None:
                if matrix in sanitizer._built:
                    sanitizer.stats.plan_rebuilds += 1
                    sanitizer.stats.rebuild_sites.append(
                        f"shape={matrix.shape} p={matrix.p}"
                    )
                else:
                    sanitizer._built.add(matrix)
                    sanitizer.stats.plan_builds += 1
            else:
                # A cached plan still marks the matrix as "has built":
                # dropping it later must count as a rebuild even if the
                # first build predated the sanitizer.
                sanitizer._built.add(matrix)
            return orig_get_plan(matrix)

        def row_shard(matrix, start_block, stop_block):
            out = orig_row_shard(matrix, start_block, stop_block)
            sanitizer.stats.shard_checks += 1
            if not np.shares_memory(out._data, matrix._data):
                raise AliasingViolationError(
                    f"row_shard([{start_block}, {stop_block})) of a "
                    f"{matrix.shape} matrix returned a copy; the serving "
                    f"contract requires a view of the parent's storage"
                )
            sanitizer.freeze(out._data)
            return out

        cls._get_plan = _get_plan
        cls.row_shard = row_shard
        return self

    def __exit__(self, *exc_info) -> None:
        if not Sanitizer._stack or Sanitizer._stack[-1] is not self:
            raise RuntimeError("sanitizer scopes must exit LIFO")
        cls = BlockPermutedDiagonalMatrix
        cls._get_plan = self._orig_get_plan
        cls.row_shard = self._orig_row_shard
        # Restore flags LIFO so re-frozen duplicates unwind correctly.
        while self._frozen:
            arr, original = self._frozen.pop()
            try:
                arr.setflags(write=original)
            except ValueError:  # base became immutable; nothing to restore
                pass
        Sanitizer._stack.pop()

    # -- checks --------------------------------------------------------

    def freeze(self, arr: np.ndarray) -> None:
        """Mark ``arr`` read-only until the sanitizer exits.

        Writes through it then raise ``ValueError`` at the offending
        statement instead of silently diverging from the aliased parent.
        """
        self._frozen.append((arr, bool(arr.flags.writeable)))
        arr.setflags(write=False)
        self.stats.frozen_buffers += 1

    def assert_aliases(self, a: np.ndarray, b: np.ndarray, what: str) -> None:
        """Raise :class:`AliasingViolationError` unless ``a``/``b`` share memory."""
        if not np.shares_memory(a, b):
            raise AliasingViolationError(f"{what}: buffers do not share memory")

    def assert_no_plan_rebuild(self) -> None:
        """Raise :class:`PlanRebuildError` if any plan was rebuilt."""
        if self.stats.plan_rebuilds:
            sites = ", ".join(self.stats.rebuild_sites)
            raise PlanRebuildError(
                f"{self.stats.plan_rebuilds} index-plan rebuild(s) detected "
                f"({sites}); plans must be built once and only invalidated "
                f"through set_structure"
            )


def sanitize() -> Sanitizer:
    """The sanitizer as a context manager::

        with sanitize() as s:
            run_workload()
            s.assert_no_plan_rebuild()
    """
    return Sanitizer()


def current_sanitizer() -> Sanitizer | None:
    """The innermost active :class:`Sanitizer`, or ``None`` outside any."""
    return Sanitizer._stack[-1] if Sanitizer._stack else None
