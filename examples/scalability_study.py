"""Scalability of the PermDNN engine with PE count (Fig. 13).

Sweeps the number of PEs and reports speedup over the 1-PE configuration
on each Table VII workload.  The structural load balance of PD matrices
means speedup stays near-linear until per-PE work becomes too small.

Run:  python examples/scalability_study.py
"""

from repro.hw import (
    EngineConfig,
    PermDNNEngine,
    TABLE_VII_WORKLOADS,
    make_workload_instance,
)

PE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def main() -> None:
    print("=== Fig. 13: speedup vs number of PEs ===\n")
    header = f"{'layer':9s} " + " ".join(f"{n:>7d}PE" for n in PE_COUNTS)
    print(header)
    print("-" * len(header))
    for workload in TABLE_VII_WORKLOADS:
        matrix, x = make_workload_instance(workload, rng=0)
        cycles = []
        for n_pe in PE_COUNTS:
            engine = PermDNNEngine(EngineConfig(n_pe=n_pe))
            # capacity is waived: small-PE points would need more SRAM
            # banks per PE, but Fig. 13 studies compute scaling only
            result = engine.run_fc_layer(matrix, x, enforce_capacity=False)
            cycles.append(result.cycles)
        speedups = [cycles[0] / c for c in cycles]
        print(
            f"{workload.name:9s} "
            + " ".join(f"{s:8.2f}" for s in speedups)
        )
    print(
        "\nnear-linear scaling: the block-permuted diagonal structure "
        "distributes non-zeros evenly, so no PE ever straggles (Sec. V-D)"
    )


if __name__ == "__main__":
    main()
