"""NMT with PD-compressed LSTMs: the Table III experiment at small scale.

Trains two seq2seq models -- dense LSTMs and p-compressed PD LSTMs -- on
the synthetic translation corpus (IWSLT substitute) and compares BLEU.
Paper claim: BLEU is unchanged (23.3 -> 23.3) at 8x weight compression.

Run:  python examples/nmt_translation.py
"""

import numpy as np

from repro.datasets import TranslationCorpus
from repro.metrics import corpus_bleu, model_storage_report
from repro.models import Seq2SeqNMT
from repro.nn import Adam, CrossEntropyLoss


def train_and_score(p: int | None, corpus: TranslationCorpus, steps: int = 250):
    model = Seq2SeqNMT(
        vocab_size=corpus.vocab.size, embed_dim=24, hidden=48, p=p,
        num_layers=2, rng=0,
    )
    optimizer = Adam(model.parameters(), lr=8e-3)
    loss_fn = CrossEntropyLoss(ignore_index=corpus.vocab.PAD)
    gen = np.random.default_rng(1)
    loss = float("nan")
    for step in range(steps):
        src, tgt_in, tgt_out = corpus.to_batch(corpus.sample_pairs(32, gen))
        loss = model.train_batch(src, tgt_in, tgt_out, optimizer, loss_fn)

    eval_pairs = corpus.sample_pairs(100, np.random.default_rng(999))
    src, _, _ = corpus.to_batch(eval_pairs)
    hypotheses = model.greedy_decode(
        src, bos=corpus.vocab.BOS, eos=corpus.vocab.EOS, max_len=12
    )
    references = [target for _, target in eval_pairs]
    bleu = corpus_bleu(references, hypotheses)
    report = model_storage_report(model)
    return loss, bleu, report


def main() -> None:
    corpus = TranslationCorpus(vocab_size=24, min_len=3, max_len=6, seed=0)
    print("=== Table III (scaled): dense vs PD stacked-LSTM NMT ===\n")
    print("model has 4 LSTMs x 8 component weight matrices = 32 FC matrices\n")
    for label, p in (("dense", None), ("PD p=4", 4)):
        loss, bleu, report = train_and_score(p, corpus)
        print(
            f"{label:8s} final loss {loss:6.3f}   BLEU {bleu:6.2f}   "
            f"LSTM-weight compression {report.compression_ratio:5.2f}x"
        )
    print(
        "\npaper: BLEU 23.3 (dense) vs 23.3 (PD p=8) at 8x compression -- "
        "compression does not cost translation quality"
    )


if __name__ == "__main__":
    main()
