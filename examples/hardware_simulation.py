"""Simulate the PermDNN engine against EIE on the paper's FC workloads.

Runs the cycle-level simulator on the six Table VII benchmark layers,
verifies each result against the numpy golden model, and reproduces the
Fig. 12 comparison (speedup / area efficiency / energy efficiency vs the
45->28 nm projected EIE).

Run:  python examples/hardware_simulation.py
"""

from repro.hw import PermDNNEngine, TABLE_VII_WORKLOADS, make_workload_instance
from repro.hw.baselines import EIEConfig, EIESimulator
from repro.hw.verify import verify_engine


def main() -> None:
    engine = PermDNNEngine()
    eie = EIESimulator(EIEConfig.projected_28nm())
    print("=== PermDNN 32-PE engine (28 nm, 1.2 GHz) ===")
    print(
        f"power {engine.power_w * 1000:.1f} mW, area {engine.area_mm2:.2f} mm2, "
        f"peak {engine.config.peak_gops:.1f} GOPS (compressed domain)\n"
    )

    header = (
        f"{'layer':9s} {'cycles':>8s} {'util':>5s} {'lat(us)':>8s} "
        f"{'equiv GOPS':>11s} {'vs EIE speed':>12s} {'area-eff':>9s} "
        f"{'energy-eff':>10s}"
    )
    print(header)
    print("-" * len(header))
    for workload in TABLE_VII_WORKLOADS:
        matrix, x = make_workload_instance(workload, rng=0)
        err = verify_engine(engine, matrix, x)
        assert err == 0.0, "engine output diverged from golden model"
        result = engine.run_fc_layer(matrix, x)
        perf = engine.performance(result, (workload.m, workload.n))

        pruned = EIESimulator.prune_reference(
            (workload.m, workload.n), workload.weight_density, rng=1
        )
        eie_perf = eie.performance(
            eie.run_fc_layer(pruned, x), (workload.m, workload.n)
        )
        print(
            f"{workload.name:9s} {result.cycles:8d} {result.utilization:5.2f} "
            f"{perf.latency_us:8.2f} {perf.equivalent_gops:11.1f} "
            f"{perf.speedup_over(eie_perf):11.2f}x "
            f"{perf.area_efficiency_ratio(eie_perf):8.2f}x "
            f"{perf.energy_efficiency_ratio(eie_perf):9.2f}x"
        )
    print(
        "\npaper (Fig. 12): speedup 3.3-4.8x, area efficiency 5.9-8.5x, "
        "energy efficiency 2.8-4.0x on the Alex-FC layers"
    )


if __name__ == "__main__":
    main()
