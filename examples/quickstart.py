"""Quickstart: train a permuted-diagonal MLP and compare it with dense.

Demonstrates the paper's central algorithmic claim at laptop scale: an FC
network whose weight matrices are block-permuted diagonal (compression
ratio = p, zero index storage) trains from scratch to the same accuracy as
its dense counterpart.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import GaussianMixtureDataset
from repro.metrics import model_storage_report
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Linear,
    PermDiagLinear,
    ReLU,
    Sequential,
    Trainer,
)


def build_model(compressed: bool, p: int = 4, seed: int = 0) -> Sequential:
    """A 3-layer classifier, dense or PD-compressed."""
    rng = np.random.default_rng(seed)
    if compressed:
        return Sequential(
            PermDiagLinear(64, 128, p=p, rng=rng),
            ReLU(),
            PermDiagLinear(128, 128, p=p, rng=rng),
            ReLU(),
            PermDiagLinear(128, 10, p=2, rng=rng),
        )
    return Sequential(
        Linear(64, 128, rng=rng),
        ReLU(),
        Linear(128, 128, rng=rng),
        ReLU(),
        Linear(128, 10, rng=rng),
    )


def main() -> None:
    dataset = GaussianMixtureDataset(
        num_features=64, num_classes=10, separation=2.5, seed=0
    )
    x_train, y_train, x_test, y_test = dataset.train_test_split(4000, 1000)

    print("=== PermDNN quickstart: dense vs permuted-diagonal MLP ===\n")
    results = {}
    for label, compressed in (("dense", False), ("permuted-diagonal", True)):
        model = build_model(compressed)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=3e-3),
            CrossEntropyLoss(),
            batch_size=64,
            rng=0,
        )
        history = trainer.fit(x_train, y_train, x_test, y_test, epochs=12)
        report = model_storage_report(model)
        results[label] = (history.final_test_accuracy, report)
        print(
            f"{label:18s} test accuracy {history.final_test_accuracy:6.2%}   "
            f"stored weights {report.stored_weights:7d}   "
            f"compression {report.compression_ratio:5.2f}x"
        )

    dense_acc = results["dense"][0]
    pd_acc = results["permuted-diagonal"][0]
    print(
        f"\naccuracy gap (dense - PD): {dense_acc - pd_acc:+.2%} "
        f"(paper: 'no or negligible accuracy loss')"
    )
    print(
        "PD model stores positions implicitly -- zero index bits "
        "(the Fig. 4 argument)."
    )


if __name__ == "__main__":
    main()
