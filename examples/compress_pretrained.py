"""Compress a pre-trained dense model: the Sec. III-F two-step flow.

1. Train a dense LeNet-5-style network on procedural digit images.
2. Project every FC weight matrix onto the optimal permuted-diagonal
   support (L2-optimal approximation).
3. Fine-tune with the structure-preserving update rules.

The paper reports this flow reaching 99.06% on MNIST at 40x compression;
here we reproduce the *shape*: a large accuracy drop right after projection
that fine-tuning recovers to near the dense baseline.

Run:  python examples/compress_pretrained.py
"""

import numpy as np

from repro.core import approximate_pd
from repro.datasets import make_digits
from repro.metrics import model_storage_report
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Flatten,
    Linear,
    MaxPool2D,
    PermDiagLinear,
    ReLU,
    Sequential,
    Trainer,
    evaluate_classifier,
)
from repro.nn.layers.conv2d import Conv2D


def build_dense(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2D(1, 6, 5, padding=2, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(6 * 14 * 14, 120, rng=rng),
        ReLU(),
        Linear(120, 84, rng=rng),
        ReLU(),
        Linear(84, 10, rng=rng),
    )


def pd_convert(model: Sequential, fc_p: int) -> Sequential:
    """Replace hidden FC layers by their optimal PD approximations."""
    layers = []
    for layer in model.layers:
        if isinstance(layer, Linear) and layer.out_features > 10:
            approx = approximate_pd(layer.weight.value, p=fc_p, scheme="best")
            layers.append(PermDiagLinear.from_matrix(approx, bias=layer.bias.value))
        else:
            layers.append(layer)
    return Sequential(*layers)


def main() -> None:
    x_train, y_train = make_digits(3000, noise=0.12, seed=0)
    x_test, y_test = make_digits(800, noise=0.12, seed=1)

    print("=== Sec. III-F: dense pre-train -> PD approximation -> fine-tune ===\n")
    dense = build_dense()
    Trainer(
        dense, Adam(dense.parameters(), lr=2e-3), CrossEntropyLoss(),
        batch_size=64, rng=0,
    ).fit(x_train, y_train, epochs=4)
    dense_acc = evaluate_classifier(dense, x_test, y_test)
    print(f"dense pre-trained accuracy:        {dense_acc:6.2%}")

    compressed = pd_convert(dense, fc_p=8)
    post_proj_acc = evaluate_classifier(compressed, x_test, y_test)
    print(f"right after PD projection (p=8):   {post_proj_acc:6.2%}")

    Trainer(
        compressed, Adam(compressed.parameters(), lr=1e-3), CrossEntropyLoss(),
        batch_size=64, rng=1,
    ).fit(x_train, y_train, epochs=4)
    tuned_acc = evaluate_classifier(compressed, x_test, y_test)
    report = model_storage_report(compressed)
    print(f"after structure-preserving tuning: {tuned_acc:6.2%}")
    print(
        f"\nFC compression {report.compression_ratio:.1f}x; accuracy gap vs "
        f"dense {dense_acc - tuned_acc:+.2%} (paper: 99.06% at 40x on MNIST)"
    )


if __name__ == "__main__":
    main()
