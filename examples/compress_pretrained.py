"""Compress a pre-trained dense model: the Sec. III-F two-step flow.

1. Train a dense LeNet-5-style network on procedural digit images.
2. Project every weight matrix onto the optimal permuted-diagonal
   support (L2-optimal approximation, searched per layer).
3. Fine-tune with the structure-preserving update rules.
4. Export the result as a staged serving bundle and verify it serves
   bit-identically with zero index-plan builds.

The paper reports this flow reaching 99.06% on MNIST at 40x compression;
here we reproduce the *shape*: a large accuracy drop right after
projection that fine-tuning recovers toward the dense baseline.

Since the ``repro.compress`` factory landed, this example is a thin
wrapper over :func:`repro.compress.compress_model` -- the same pipeline
behind ``repro compress`` / ``repro compress-zoo``.

Run:  python examples/compress_pretrained.py
"""

import tempfile

import numpy as np

from repro.compress import compress_model
from repro.datasets import make_digits
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Trainer,
)
from repro.nn.layers.conv2d import Conv2D


def build_dense(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2D(1, 6, 5, padding=2, bias=False, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(6 * 14 * 14, 120, bias=False, rng=rng),
        ReLU(),
        Linear(120, 84, bias=False, rng=rng),
        ReLU(),
        Linear(84, 10, bias=False, rng=rng),
    )


def main() -> None:
    x_train, y_train = make_digits(3000, noise=0.12, seed=0)
    x_test, y_test = make_digits(800, noise=0.12, seed=1)

    print("=== Sec. III-F: dense pre-train -> PD approximation -> fine-tune ===\n")
    dense = build_dense()
    Trainer(
        dense, Adam(dense.parameters(), lr=2e-3), CrossEntropyLoss(),
        batch_size=64, rng=0,
    ).fit(x_train, y_train, epochs=4)

    with tempfile.TemporaryDirectory() as bundle_dir:
        result = compress_model(
            dense,
            (x_train, y_train, x_test, y_test),
            name="lenet-pretrained",
            fc_p=8,
            conv_p=2,
            head_p=2,
            finetune_epochs=4,
            lr=1e-3,
            seed=1,
            input_hw=(28, 28),
            bundle_dir=bundle_dir,
        )
    report = result.report

    print(f"dense pre-trained accuracy:        {report.dense_metric:6.2%}")
    print(f"right after PD projection (p=8):   {report.projected_metric:6.2%}")
    print(f"after structure-preserving tuning: {report.finetuned_metric:6.2%}")
    print(f"bundle serving verified:           {report.verified}")
    print(
        f"\ncompression {report.compression_ratio:.1f}x; accuracy gap vs "
        f"dense {-report.metric_delta:+.2%} (paper: 99.06% at 40x on MNIST)"
    )


if __name__ == "__main__":
    main()
